// Package ipc provides a bounded message queue modelled on the POSIX IPC
// message queue the paper inserts between the database API and the audit
// process (Figure 1). The database API posts a message on every API call;
// the audit process drains the queue to drive the progress-indicator element
// and event-triggered audits.
//
// The queue has two usage modes. In simulation mode (the default for this
// repository's experiments) producers and consumer run on the simulation
// event loop, so the queue is a plain FIFO with drop accounting. The queue
// is nevertheless safe for concurrent use so that it can also back the
// standalone, goroutine-based deployments exercised by the examples.
package ipc

import (
	"errors"
	"sync"
	"time"
)

// Common queue errors.
var (
	// ErrQueueFull is returned by TrySend when the queue is at capacity.
	ErrQueueFull = errors.New("ipc: queue full")
	// ErrQueueClosed is returned when operating on a closed queue.
	ErrQueueClosed = errors.New("ipc: queue closed")
)

// MsgKind identifies the purpose of a message, mirroring the event types
// the modified database API emits.
type MsgKind int

// Message kinds posted by the database API and control plane.
const (
	// MsgDBAccess reports any database API invocation (progress signal).
	MsgDBAccess MsgKind = iota + 1
	// MsgDBWrite reports a write-class API invocation (event trigger for
	// event-triggered audits, per §4.3).
	MsgDBWrite
	// MsgHeartbeat is the manager's liveness probe.
	MsgHeartbeat
	// MsgHeartbeatReply is the audit process's response to a heartbeat.
	MsgHeartbeatReply
	// MsgControl carries framework control commands (element registration,
	// configuration changes).
	MsgControl
)

// String returns a human-readable kind name.
func (k MsgKind) String() string {
	switch k {
	case MsgDBAccess:
		return "db-access"
	case MsgDBWrite:
		return "db-write"
	case MsgHeartbeat:
		return "heartbeat"
	case MsgHeartbeatReply:
		return "heartbeat-reply"
	case MsgControl:
		return "control"
	default:
		return "unknown"
	}
}

// Message is one queue entry. It carries the client process ID and the
// database location being accessed, as the paper's progress indicator
// requires (§4.2), plus the operation name for per-table statistics.
type Message struct {
	Kind    MsgKind
	PID     int           // client process/thread ID
	Table   int           // table ID accessed, -1 when not applicable
	Record  int           // record index accessed, -1 when not applicable
	Op      string        // API operation name, e.g. "DBwrite_rec"
	At      time.Duration // virtual time the message was posted
	Payload any           // element-specific payload for control messages
}

// Stats is a snapshot of queue counters.
type Stats struct {
	Sent     uint64
	Received uint64
	Dropped  uint64
	MaxDepth int
}

// DropStats is a snapshot of rejection accounting for a bounded queue — the
// numbers a consumer needs to report backpressure: how much was shed in
// total, the worst consecutive shedding run, and how deep the queue got.
// The network server reports this shape for both its request queue and the
// audit notification queue.
type DropStats struct {
	// Dropped is the total number of messages rejected at capacity.
	Dropped uint64
	// Burst is the longest run of consecutive rejections, i.e. how long
	// the producer was shedding without a single successful send — the
	// high-water mark of sustained overload.
	Burst uint64
	// HighWater is the deepest queue depth ever observed.
	HighWater int
}

// Queue is a bounded FIFO of Messages.
type Queue struct {
	mu       sync.Mutex
	buf      []Message
	cap      int
	closed   bool
	stats    Stats
	curBurst uint64 // consecutive TrySend rejections since the last success
	maxBurst uint64
}

// NewQueue returns a queue holding at most capacity messages. Capacity must
// be positive.
func NewQueue(capacity int) (*Queue, error) {
	if capacity <= 0 {
		return nil, errors.New("ipc: capacity must be positive")
	}
	return &Queue{cap: capacity}, nil
}

// TrySend enqueues m, returning ErrQueueFull (and counting a drop) when the
// queue is at capacity, or ErrQueueClosed after Close.
func (q *Queue) TrySend(m Message) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrQueueClosed
	}
	if len(q.buf) >= q.cap {
		q.stats.Dropped++
		q.curBurst++
		if q.curBurst > q.maxBurst {
			q.maxBurst = q.curBurst
		}
		return ErrQueueFull
	}
	q.buf = append(q.buf, m)
	q.stats.Sent++
	q.curBurst = 0
	if len(q.buf) > q.stats.MaxDepth {
		q.stats.MaxDepth = len(q.buf)
	}
	return nil
}

// TryRecv dequeues the oldest message. ok is false when the queue is empty.
func (q *Queue) TryRecv() (m Message, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.buf) == 0 {
		return Message{}, false
	}
	m = q.buf[0]
	// Shift rather than re-slice so the backing array does not pin
	// delivered messages.
	copy(q.buf, q.buf[1:])
	q.buf = q.buf[:len(q.buf)-1]
	q.stats.Received++
	return m, true
}

// DrainAll dequeues and returns every pending message.
func (q *Queue) DrainAll() []Message {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.buf) == 0 {
		return nil
	}
	out := make([]Message, len(q.buf))
	copy(out, q.buf)
	q.buf = q.buf[:0]
	q.stats.Received += uint64(len(out))
	return out
}

// Len reports the number of pending messages.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.buf)
}

// Cap reports the queue capacity.
func (q *Queue) Cap() int { return q.cap }

// Stats returns a snapshot of the queue counters.
func (q *Queue) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.stats
}

// Drops returns the rejection-accounting snapshot: total drops, the longest
// consecutive-drop burst, and the depth high-water mark.
func (q *Queue) Drops() DropStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return DropStats{
		Dropped:   q.stats.Dropped,
		Burst:     q.maxBurst,
		HighWater: q.stats.MaxDepth,
	}
}

// Close marks the queue closed. Pending messages remain receivable; sends
// fail with ErrQueueClosed. Close is idempotent.
func (q *Queue) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
}

// Closed reports whether Close has been called.
func (q *Queue) Closed() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.closed
}

// Reset empties the queue and reopens it, preserving nothing. Used when the
// manager restarts the audit process: a fresh process attaches to a fresh
// queue state.
func (q *Queue) Reset() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.buf = q.buf[:0]
	q.closed = false
	q.stats = Stats{}
	q.curBurst = 0
	q.maxBurst = 0
}
