package ipc

import "repro/internal/metrics"

// RegisterMetrics publishes the queue's live state and rejection
// accounting into reg under prefix (e.g. "audit.queue"): depth, capacity,
// sent/received totals, and the DropStats triple (dropped, longest drop
// burst, depth high-water mark). The gauges read the queue under its own
// mutex at snapshot time, so they are always current and safe from any
// goroutine.
func (q *Queue) RegisterMetrics(reg *metrics.Registry, prefix string) {
	reg.GaugeFunc(prefix+".depth", func() int64 { return int64(q.Len()) })
	reg.GaugeFunc(prefix+".capacity", func() int64 { return int64(q.Cap()) })
	reg.GaugeFunc(prefix+".sent", func() int64 { return int64(q.Stats().Sent) })
	reg.GaugeFunc(prefix+".received", func() int64 { return int64(q.Stats().Received) })
	reg.GaugeFunc(prefix+".dropped", func() int64 { return int64(q.Drops().Dropped) })
	reg.GaugeFunc(prefix+".drop_burst", func() int64 { return int64(q.Drops().Burst) })
	reg.GaugeFunc(prefix+".high_water", func() int64 { return int64(q.Drops().HighWater) })
}
