package ipc

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func mustQueue(t *testing.T, capacity int) *Queue {
	t.Helper()
	q, err := NewQueue(capacity)
	if err != nil {
		t.Fatalf("NewQueue(%d): %v", capacity, err)
	}
	return q
}

func TestNewQueueRejectsBadCapacity(t *testing.T) {
	for _, c := range []int{0, -1, -100} {
		if _, err := NewQueue(c); err == nil {
			t.Fatalf("NewQueue(%d) succeeded, want error", c)
		}
	}
}

func TestSendRecvFIFO(t *testing.T) {
	q := mustQueue(t, 10)
	for i := 0; i < 5; i++ {
		if err := q.TrySend(Message{Kind: MsgDBAccess, PID: i}); err != nil {
			t.Fatalf("TrySend %d: %v", i, err)
		}
	}
	for i := 0; i < 5; i++ {
		m, ok := q.TryRecv()
		if !ok {
			t.Fatalf("TryRecv %d: empty", i)
		}
		if m.PID != i {
			t.Fatalf("recv order: got PID %d, want %d", m.PID, i)
		}
	}
	if _, ok := q.TryRecv(); ok {
		t.Fatal("TryRecv on empty queue reported ok")
	}
}

func TestFullQueueDrops(t *testing.T) {
	q := mustQueue(t, 2)
	if err := q.TrySend(Message{}); err != nil {
		t.Fatal(err)
	}
	if err := q.TrySend(Message{}); err != nil {
		t.Fatal(err)
	}
	err := q.TrySend(Message{})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("TrySend on full queue: %v, want ErrQueueFull", err)
	}
	st := q.Stats()
	if st.Dropped != 1 || st.Sent != 2 {
		t.Fatalf("stats = %+v, want Dropped=1 Sent=2", st)
	}
}

func TestDrainAll(t *testing.T) {
	q := mustQueue(t, 10)
	for i := 0; i < 4; i++ {
		if err := q.TrySend(Message{PID: i}); err != nil {
			t.Fatal(err)
		}
	}
	msgs := q.DrainAll()
	if len(msgs) != 4 {
		t.Fatalf("DrainAll returned %d messages, want 4", len(msgs))
	}
	for i, m := range msgs {
		if m.PID != i {
			t.Fatalf("drain order: got %d at %d", m.PID, i)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("Len after drain = %d, want 0", q.Len())
	}
	if got := q.DrainAll(); got != nil {
		t.Fatalf("DrainAll on empty = %v, want nil", got)
	}
}

func TestCloseSemantics(t *testing.T) {
	q := mustQueue(t, 4)
	if err := q.TrySend(Message{PID: 7}); err != nil {
		t.Fatal(err)
	}
	q.Close()
	if !q.Closed() {
		t.Fatal("Closed() = false after Close")
	}
	if err := q.TrySend(Message{}); !errors.Is(err, ErrQueueClosed) {
		t.Fatalf("send after close: %v, want ErrQueueClosed", err)
	}
	// Pending messages remain receivable.
	m, ok := q.TryRecv()
	if !ok || m.PID != 7 {
		t.Fatalf("recv after close = (%+v, %v), want PID 7", m, ok)
	}
	q.Close() // idempotent
}

func TestReset(t *testing.T) {
	q := mustQueue(t, 4)
	for i := 0; i < 3; i++ {
		_ = q.TrySend(Message{})
	}
	q.Close()
	q.Reset()
	if q.Closed() {
		t.Fatal("queue still closed after Reset")
	}
	if q.Len() != 0 {
		t.Fatalf("Len after Reset = %d, want 0", q.Len())
	}
	if st := q.Stats(); st != (Stats{}) {
		t.Fatalf("stats after Reset = %+v, want zero", st)
	}
	if err := q.TrySend(Message{}); err != nil {
		t.Fatalf("send after Reset: %v", err)
	}
}

func TestStatsMaxDepth(t *testing.T) {
	q := mustQueue(t, 10)
	for i := 0; i < 6; i++ {
		_ = q.TrySend(Message{})
	}
	for i := 0; i < 3; i++ {
		_, _ = q.TryRecv()
	}
	_ = q.TrySend(Message{})
	st := q.Stats()
	if st.MaxDepth != 6 {
		t.Fatalf("MaxDepth = %d, want 6", st.MaxDepth)
	}
	if st.Received != 3 {
		t.Fatalf("Received = %d, want 3", st.Received)
	}
}

func TestMsgKindString(t *testing.T) {
	tests := []struct {
		kind MsgKind
		want string
	}{
		{MsgDBAccess, "db-access"},
		{MsgDBWrite, "db-write"},
		{MsgHeartbeat, "heartbeat"},
		{MsgHeartbeatReply, "heartbeat-reply"},
		{MsgControl, "control"},
		{MsgKind(99), "unknown"},
	}
	for _, tt := range tests {
		if got := tt.kind.String(); got != tt.want {
			t.Errorf("MsgKind(%d).String() = %q, want %q", tt.kind, got, tt.want)
		}
	}
}

func TestConcurrentProducersConsumer(t *testing.T) {
	q := mustQueue(t, 1000)
	const producers, perProducer = 8, 100
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				for {
					if err := q.TrySend(Message{PID: p, Record: i, At: time.Duration(i)}); err == nil {
						break
					}
				}
			}
		}()
	}
	done := make(chan int)
	go func() {
		count := 0
		for count < producers*perProducer {
			if _, ok := q.TryRecv(); ok {
				count++
			}
		}
		done <- count
	}()
	wg.Wait()
	if got := <-done; got != producers*perProducer {
		t.Fatalf("consumed %d, want %d", got, producers*perProducer)
	}
}

// Property: for any interleaving of sends and receives, the number of
// messages received never exceeds the number sent, and FIFO order holds per
// the sequence numbers we stamp into Record.
func TestPropertySendRecvConservation(t *testing.T) {
	f := func(ops []bool) bool {
		q, err := NewQueue(8)
		if err != nil {
			return false
		}
		next := 0
		lastRecv := -1
		sent, recvd := 0, 0
		for _, isSend := range ops {
			if isSend {
				if err := q.TrySend(Message{Record: next}); err == nil {
					next++
					sent++
				}
			} else if m, ok := q.TryRecv(); ok {
				if m.Record <= lastRecv {
					return false // order violated
				}
				lastRecv = m.Record
				recvd++
			}
		}
		return recvd <= sent && q.Len() == sent-recvd
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
