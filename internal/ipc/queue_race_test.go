package ipc

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestConcurrentProducersConsumers hammers one bounded queue from several
// producer and consumer goroutines — the exact access pattern of the
// network server, where connection goroutines post while the executor
// drains — and checks that no message is lost or invented and that the
// drop accounting balances. Run under -race this also certifies the
// queue's internal synchronization.
func TestConcurrentProducersConsumers(t *testing.T) {
	const (
		producers   = 4
		consumers   = 2
		perProducer = 5000
	)
	q, err := NewQueue(64)
	if err != nil {
		t.Fatal(err)
	}

	var sent, dropped, received atomic.Uint64
	var wg sync.WaitGroup

	stop := make(chan struct{})
	for i := 0; i < consumers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if m, ok := q.TryRecv(); ok {
					received.Add(1)
					_ = m
					continue
				}
				select {
				case <-stop:
					// Producers are done: drain whatever remains, then
					// exit once the queue stays empty.
					if q.Len() == 0 {
						return
					}
				default:
				}
			}
		}()
	}

	var pwg sync.WaitGroup
	for p := 0; p < producers; p++ {
		pwg.Add(1)
		go func(p int) {
			defer pwg.Done()
			for i := 0; i < perProducer; i++ {
				err := q.TrySend(Message{
					Kind: MsgDBWrite, PID: p, Record: i,
					At: time.Duration(i),
				})
				switch err {
				case nil:
					sent.Add(1)
				case ErrQueueFull:
					dropped.Add(1)
				default:
					t.Errorf("producer %d: unexpected error %v", p, err)
					return
				}
			}
		}(p)
	}
	pwg.Wait()
	close(stop)
	wg.Wait()

	if got := sent.Load() + dropped.Load(); got != producers*perProducer {
		t.Fatalf("sent %d + dropped %d = %d, want %d attempts",
			sent.Load(), dropped.Load(), got, producers*perProducer)
	}
	if received.Load() != sent.Load() {
		t.Fatalf("received %d of %d sent messages", received.Load(), sent.Load())
	}

	st := q.Stats()
	if st.Sent != sent.Load() || st.Dropped != dropped.Load() {
		t.Fatalf("queue stats (sent %d, dropped %d) disagree with producers (sent %d, dropped %d)",
			st.Sent, st.Dropped, sent.Load(), dropped.Load())
	}
	if st.MaxDepth > q.Cap() {
		t.Fatalf("depth high-water %d exceeds capacity %d", st.MaxDepth, q.Cap())
	}

	d := q.Drops()
	if d.Dropped != st.Dropped || d.HighWater != st.MaxDepth {
		t.Fatalf("Drops() %+v disagrees with Stats() %+v", d, st)
	}
	if d.Dropped > 0 && (d.Burst == 0 || d.Burst > d.Dropped) {
		t.Fatalf("burst high-water %d implausible for %d total drops", d.Burst, d.Dropped)
	}
}

func TestDropsBurstAccounting(t *testing.T) {
	q, err := NewQueue(2)
	if err != nil {
		t.Fatal(err)
	}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(q.TrySend(Message{}))
	must(q.TrySend(Message{}))
	// Three consecutive rejections at capacity: burst 3.
	for i := 0; i < 3; i++ {
		if err := q.TrySend(Message{}); err != ErrQueueFull {
			t.Fatalf("send %d on full queue: %v", i, err)
		}
	}
	if _, ok := q.TryRecv(); !ok {
		t.Fatal("recv from full queue failed")
	}
	// A successful send resets the burst counter...
	must(q.TrySend(Message{}))
	// ...so two more rejections form a burst of 2, not 5.
	for i := 0; i < 2; i++ {
		if err := q.TrySend(Message{}); err != ErrQueueFull {
			t.Fatalf("send %d on refull queue: %v", i, err)
		}
	}
	d := q.Drops()
	if d.Dropped != 5 {
		t.Fatalf("Dropped = %d, want 5", d.Dropped)
	}
	if d.Burst != 3 {
		t.Fatalf("Burst = %d, want 3 (reset by successful send)", d.Burst)
	}
	if d.HighWater != 2 {
		t.Fatalf("HighWater = %d, want 2", d.HighWater)
	}
	q.Reset()
	if d := q.Drops(); d != (DropStats{}) {
		t.Fatalf("Drops() after Reset = %+v, want zero", d)
	}
}
