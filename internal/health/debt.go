package health

import (
	"sort"
	"sync"
	"time"

	"repro/internal/metrics"
)

// DebtMeter is audit-debt accounting, published from the audit
// scheduler's periodic element: scheduled-vs-completed sweeps, per-
// checker element counts, sweep-interval overruns, and a behind-schedule
// gauge derived from wall time against the declared period. It
// implements the audit package's DebtSink hook interface.
//
// The schedule model: the first SweepStart anchors the cadence; by wall
// time t the scheduler owes floor((t-anchor)/period)+1 completed sweeps.
// Behind() is that expectation minus completions, clamped at zero — a
// saturated executor whose sim clock lags wall time shows up here as
// accumulating debt, and the catch-up sweeps drain it.
type DebtMeter struct {
	period time.Duration
	nowFn  func() time.Time // test seam; time.Now in production

	mu            sync.Mutex
	anchor        time.Time
	lastStart     time.Time
	sweepsStarted uint64
	sweepsDone    uint64
	elemScheduled uint64
	elemDone      uint64
	overruns      uint64
	lastGap       time.Duration
	maxBehind     int64
	elements      map[string]*elemDebt
}

type elemDebt struct {
	scheduled uint64
	done      uint64
}

// NewDebtMeter builds a meter for a periodic audit schedule.
func NewDebtMeter(period time.Duration) *DebtMeter {
	if period <= 0 {
		period = time.Second
	}
	return &DebtMeter{
		period:   period,
		nowFn:    time.Now,
		elements: make(map[string]*elemDebt, 8),
	}
}

// SweepStart marks a periodic sweep beginning with n checker elements
// scheduled.
func (m *DebtMeter) SweepStart(n int) {
	now := m.nowFn()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.anchor.IsZero() {
		m.anchor = now
	}
	if !m.lastStart.IsZero() {
		gap := now.Sub(m.lastStart)
		m.lastGap = gap
		if gap > m.period+m.period/2 {
			m.overruns++
		}
	}
	m.lastStart = now
	m.sweepsStarted++
	m.elemScheduled += uint64(n)
	if b := m.behindLocked(now); b > m.maxBehind {
		m.maxBehind = b
	}
}

// ElementDone marks one checker element finished within the current
// sweep.
func (m *DebtMeter) ElementDone(name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.elemDone++
	e := m.elements[name]
	if e == nil {
		e = &elemDebt{}
		m.elements[name] = e
	}
	e.done++
}

// ElementScheduled marks one checker element scheduled (called per
// element at sweep start, so a mid-sweep stall is visible per checker).
func (m *DebtMeter) ElementScheduled(name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e := m.elements[name]
	if e == nil {
		e = &elemDebt{}
		m.elements[name] = e
	}
	e.scheduled++
}

// SweepEnd marks the sweep complete.
func (m *DebtMeter) SweepEnd() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sweepsDone++
}

// Behind reports how many sweeps the schedule currently owes.
func (m *DebtMeter) Behind() int64 {
	now := m.nowFn()
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.behindLocked(now)
}

func (m *DebtMeter) behindLocked(now time.Time) int64 {
	if m.anchor.IsZero() {
		return 0
	}
	expected := int64(now.Sub(m.anchor)/m.period) + 1
	b := expected - int64(m.sweepsDone)
	if b < 0 {
		b = 0
	}
	return b
}

// DebtStatus is the meter's exported view, part of the Status document.
type DebtStatus struct {
	PeriodMs          float64             `json:"period_ms"`
	SweepsStarted     uint64              `json:"sweeps_started"`
	SweepsCompleted   uint64              `json:"sweeps_completed"`
	Behind            int64               `json:"behind"`
	MaxBehind         int64               `json:"max_behind"`
	IntervalOverruns  uint64              `json:"interval_overruns"`
	LastGapMs         float64             `json:"last_gap_ms"`
	ElementsScheduled uint64              `json:"elements_scheduled"`
	ElementsCompleted uint64              `json:"elements_completed"`
	Elements          map[string]ElemDebt `json:"elements,omitempty"`
}

// ElemDebt is one checker's scheduled-vs-completed tally.
type ElemDebt struct {
	Scheduled uint64 `json:"scheduled"`
	Completed uint64 `json:"completed"`
}

// Status captures the meter.
func (m *DebtMeter) Status() *DebtStatus {
	now := m.nowFn()
	m.mu.Lock()
	defer m.mu.Unlock()
	s := &DebtStatus{
		PeriodMs:          float64(m.period) / float64(time.Millisecond),
		SweepsStarted:     m.sweepsStarted,
		SweepsCompleted:   m.sweepsDone,
		Behind:            m.behindLocked(now),
		MaxBehind:         m.maxBehind,
		IntervalOverruns:  m.overruns,
		LastGapMs:         float64(m.lastGap) / float64(time.Millisecond),
		ElementsScheduled: m.elemScheduled,
		ElementsCompleted: m.elemDone,
	}
	if len(m.elements) > 0 {
		s.Elements = make(map[string]ElemDebt, len(m.elements))
		for n, e := range m.elements {
			s.Elements[n] = ElemDebt{Scheduled: e.scheduled, Completed: e.done}
		}
	}
	return s
}

// ElementNames lists the checkers the meter has seen, sorted.
func (m *DebtMeter) ElementNames() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.elements))
	for n := range m.elements {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Register publishes the meter's gauges.
func (m *DebtMeter) Register(reg *metrics.Registry) {
	reg.GaugeFunc("audit.debt.behind", m.Behind)
	reg.GaugeFunc("audit.debt.max_behind", func() int64 {
		m.mu.Lock()
		defer m.mu.Unlock()
		return m.maxBehind
	})
	reg.GaugeFunc("audit.debt.overruns", func() int64 {
		m.mu.Lock()
		defer m.mu.Unlock()
		return int64(m.overruns)
	})
	reg.GaugeFunc("audit.debt.sweeps_started", func() int64 {
		m.mu.Lock()
		defer m.mu.Unlock()
		return int64(m.sweepsStarted)
	})
	reg.GaugeFunc("audit.debt.sweeps_completed", func() int64 {
		m.mu.Lock()
		defer m.mu.Unlock()
		return int64(m.sweepsDone)
	})
	reg.GaugeFunc("audit.debt.elements_scheduled", func() int64 {
		m.mu.Lock()
		defer m.mu.Unlock()
		return int64(m.elemScheduled)
	})
	reg.GaugeFunc("audit.debt.elements_completed", func() int64 {
		m.mu.Lock()
		defer m.mu.Unlock()
		return int64(m.elemDone)
	})
	reg.GaugeFunc("audit.debt.last_gap_ms", func() int64 {
		m.mu.Lock()
		defer m.mu.Unlock()
		return int64(m.lastGap / time.Millisecond)
	})
}
