package health

import (
	"sort"
	"sync"
	"time"
)

// detCacheTTL bounds how often a Snapshot recomputes; gauges read the
// tracker several times per STATS2 snapshot and share one computation.
const detCacheTTL = 50 * time.Millisecond

// defaultMaxOpen caps the open-shot table: past it the oldest entry is
// evicted (and counted), so a storm of never-detected faults cannot grow
// the tracker without bound.
const defaultMaxOpen = 1024

// defaultMaxSamples is the join-latency ring capacity.
const defaultMaxSamples = 512

// Detector joins injection shots to audit findings online, as the trace
// recorder emits them, and maintains windowed detection-latency
// percentiles plus an open-shot age watermark. All methods are safe from
// any goroutine; Shot/Finding are called from the recorder tap on the
// emitting goroutine's path and do one short mutex hold each.
type Detector struct {
	window  time.Duration // latency sample window
	bound   time.Duration // open-shot age past which a shot is an overrun
	capOpen int           // open-shot table cap

	mu       sync.Mutex
	open     map[uint64]*openShot
	samples  []detSample // ring of joined (at, latency) pairs
	next     int
	filled   bool
	joined   uint64
	overruns uint64
	evicted  uint64
	cache    DetectionStats
	cacheAt  time.Duration
	cached   bool
}

type openShot struct {
	at      time.Duration
	overrun bool // already counted against the watermark bound
}

type detSample struct {
	at, lat time.Duration
}

// NewDetector builds a tracker. window is the latency sample window,
// bound the open-shot overrun threshold; maxOpen <= 0 means the default
// table cap.
func NewDetector(window, bound time.Duration, maxOpen int) *Detector {
	if maxOpen <= 0 {
		maxOpen = defaultMaxOpen
	}
	return &Detector{
		window:  window,
		bound:   bound,
		capOpen: maxOpen,
		open:    make(map[uint64]*openShot, 16),
		samples: make([]detSample, defaultMaxSamples),
	}
}

// Shot records an injection at trace ID tr at recorder time at.
func (d *Detector) Shot(tr uint64, at time.Duration) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.open) >= d.capOpen {
		d.evictOldestLocked()
	}
	d.open[tr] = &openShot{at: at}
	d.cached = false
}

// Finding closes the shot with the same trace ID, folding the detection
// latency into the sample window. Findings without a matching open shot
// (procedure-text detections, re-findings on an already-joined trace)
// are ignored.
func (d *Detector) Finding(tr uint64, at time.Duration) {
	d.mu.Lock()
	defer d.mu.Unlock()
	sh, ok := d.open[tr]
	if !ok {
		return
	}
	delete(d.open, tr)
	lat := at - sh.at
	if lat < 0 {
		lat = 0
	}
	if lat > d.bound && !sh.overrun {
		d.overruns++
	}
	d.samples[d.next] = detSample{at: at, lat: lat}
	d.next++
	if d.next == len(d.samples) {
		d.next = 0
		d.filled = true
	}
	d.joined++
	d.cached = false
}

func (d *Detector) evictOldestLocked() {
	var oldest uint64
	var oldestAt time.Duration
	first := true
	for tr, sh := range d.open {
		if first || sh.at < oldestAt {
			first = false
			oldest, oldestAt = tr, sh.at
		}
	}
	if !first {
		delete(d.open, oldest)
		d.evicted++
	}
}

// DetectionStats is the tracker's exported view at one instant.
type DetectionStats struct {
	// Joined is the lifetime count of shots joined to findings.
	Joined uint64
	// WindowJoined is how many joins fall inside the sample window; P50
	// and P99 are computed over exactly these.
	WindowJoined int
	P50, P99     time.Duration
	// OpenShots counts injected faults no finding has closed yet;
	// OldestOpen is the age of the oldest — the detection watermark.
	OpenShots  int
	OldestOpen time.Duration
	// Overruns counts shots whose detection (or open age) exceeded the
	// bound; Evicted counts open shots dropped by the table cap.
	Overruns uint64
	Evicted  uint64
}

// Snapshot computes the stats as of recorder time now. Results are
// cached briefly so gauge fan-out shares one computation.
func (d *Detector) Snapshot(now time.Duration) DetectionStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.cached && now >= d.cacheAt && now-d.cacheAt < detCacheTTL {
		return d.cache
	}
	s := DetectionStats{Joined: d.joined, Evicted: d.evicted}

	// Watermark scan; age past the bound counts as an overrun exactly
	// once per shot, whether or not a late finding eventually lands.
	for _, sh := range d.open {
		age := now - sh.at
		if age < 0 {
			age = 0
		}
		if age > s.OldestOpen {
			s.OldestOpen = age
		}
		if age > d.bound && !sh.overrun {
			sh.overrun = true
			d.overruns++
		}
	}
	s.OpenShots = len(d.open)
	s.Overruns = d.overruns

	n := d.next
	if d.filled {
		n = len(d.samples)
	}
	lats := make([]time.Duration, 0, n)
	for i := 0; i < n; i++ {
		if sm := d.samples[i]; now-sm.at <= d.window {
			lats = append(lats, sm.lat)
		}
	}
	s.WindowJoined = len(lats)
	if n := len(lats); n > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		// Nearest-rank percentiles (ceil(q*n)), so small samples report
		// their worst joins instead of rounding down to the median.
		s.P50 = lats[(n+1)/2-1]
		s.P99 = lats[(n*99+99)/100-1]
	}

	d.cache, d.cacheAt, d.cached = s, now, true
	return s
}
