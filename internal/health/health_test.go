package health

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/trace"
)

func TestDetectorJoinAndWatermark(t *testing.T) {
	d := NewDetector(time.Minute, 2*time.Second, 0)
	// Three shots; two joined at 100ms and 300ms, one left open.
	d.Shot(1, 1*time.Second)
	d.Shot(2, 1*time.Second)
	d.Shot(3, 2*time.Second)
	d.Finding(1, 1100*time.Millisecond)
	d.Finding(2, 1300*time.Millisecond)
	// A finding with no open shot is ignored.
	d.Finding(99, 1400*time.Millisecond)

	s := d.Snapshot(3 * time.Second)
	if s.Joined != 2 || s.WindowJoined != 2 {
		t.Fatalf("joined = %d/%d, want 2/2", s.Joined, s.WindowJoined)
	}
	if s.P50 != 100*time.Millisecond || s.P99 != 300*time.Millisecond {
		t.Fatalf("p50/p99 = %v/%v, want 100ms/300ms", s.P50, s.P99)
	}
	if s.OpenShots != 1 || s.OldestOpen != 1*time.Second {
		t.Fatalf("open = %d oldest = %v, want 1 / 1s", s.OpenShots, s.OldestOpen)
	}
	if s.Overruns != 0 {
		t.Fatalf("overruns = %d, want 0", s.Overruns)
	}

	// Past the 2s bound the open shot becomes an overrun — counted once,
	// even across repeated snapshots and a late join.
	s = d.Snapshot(5 * time.Second)
	if s.Overruns != 1 || s.OldestOpen != 3*time.Second {
		t.Fatalf("overruns = %d oldest = %v, want 1 / 3s", s.Overruns, s.OldestOpen)
	}
	d.Snapshot(6 * time.Second)
	d.Finding(3, 6*time.Second)
	if s = d.Snapshot(7 * time.Second); s.Overruns != 1 {
		t.Fatalf("overrun double-counted: %d", s.Overruns)
	}
	if s.OpenShots != 0 || s.OldestOpen != 0 {
		t.Fatalf("watermark did not drain: open=%d oldest=%v", s.OpenShots, s.OldestOpen)
	}
}

func TestDetectorEvictsAtCap(t *testing.T) {
	d := NewDetector(time.Minute, time.Minute, 4)
	for i := 1; i <= 6; i++ {
		d.Shot(uint64(i), time.Duration(i)*time.Millisecond)
	}
	s := d.Snapshot(10 * time.Millisecond)
	if s.OpenShots != 4 || s.Evicted != 2 {
		t.Fatalf("open=%d evicted=%d, want 4/2", s.OpenShots, s.Evicted)
	}
	// The evicted entries were the oldest.
	if s.OldestOpen != 7*time.Millisecond {
		t.Fatalf("oldest = %v, want 7ms (shot 3)", s.OldestOpen)
	}
}

func TestDebtMeterSchedule(t *testing.T) {
	m := NewDebtMeter(100 * time.Millisecond)
	at := time.Unix(1000, 0)
	m.nowFn = func() time.Time { return at }

	if m.Behind() != 0 {
		t.Fatal("unstarted meter reports debt")
	}
	sweep := func(names ...string) {
		m.SweepStart(len(names))
		for _, n := range names {
			m.ElementScheduled(n)
			m.ElementDone(n)
		}
		m.SweepEnd()
	}
	sweep("checksum", "semantic")
	if m.Behind() != 0 {
		t.Fatalf("on-schedule behind = %d, want 0", m.Behind())
	}

	// 500ms pass with no sweeps: 5 sweeps owed.
	at = at.Add(500 * time.Millisecond)
	if got := m.Behind(); got != 5 {
		t.Fatalf("behind = %d, want 5", got)
	}
	// The late sweep's start gap (>1.5x period) is an interval overrun,
	// and catch-up sweeps drain the debt to zero.
	for i := 0; i < 5; i++ {
		sweep("checksum", "semantic")
	}
	if got := m.Behind(); got != 0 {
		t.Fatalf("post-catch-up behind = %d, want 0", got)
	}
	st := m.Status()
	if st.IntervalOverruns != 1 {
		t.Fatalf("interval overruns = %d, want 1", st.IntervalOverruns)
	}
	if st.MaxBehind < 5 {
		t.Fatalf("max behind = %d, want >= 5", st.MaxBehind)
	}
	if st.SweepsStarted != 6 || st.SweepsCompleted != 6 {
		t.Fatalf("sweeps = %d/%d, want 6/6", st.SweepsCompleted, st.SweepsStarted)
	}
	if e := st.Elements["checksum"]; e.Scheduled != 6 || e.Completed != 6 {
		t.Fatalf("checksum element debt = %+v, want 6/6", e)
	}
	if st.ElementsScheduled != 12 || st.ElementsCompleted != 12 {
		t.Fatalf("elements = %d/%d, want 12/12", st.ElementsCompleted, st.ElementsScheduled)
	}
}

// TestConcurrentHealthReads is the race-detector stress test: health-state
// readers (Status, State, gauges through a registry snapshot) run against
// concurrent tracker updates from the trace tap, debt hooks, and evaluator
// ticks. Run with -race (the repo's `make test` does).
func TestConcurrentHealthReads(t *testing.T) {
	rec := trace.New()
	p := NewPlane(SLO{EvalPeriod: time.Millisecond, MinSamples: 1}, rec.Now)
	debt := NewDebtMeter(time.Millisecond)
	p.SetDebt(debt)
	p.AddObjective(Objective{
		Name: "detect-p99", Subsystem: "audit", Bound: 2000,
		Value: func(now time.Duration) float64 {
			return float64(p.Detect().Snapshot(now).P99.Milliseconds())
		},
	})
	p.AddObjective(Objective{
		Name: "audit-behind", Subsystem: "audit", Bound: 3,
		Value: func(time.Duration) float64 { return float64(debt.Behind()) },
	})
	rec.Observe(p.OnTraceEvent)
	reg := metrics.NewRegistry()
	p.RegisterMetrics(reg)
	ring := rec.Ring("test", 64)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	work := func(f func(i int)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					f(i)
				}
			}
		}()
	}
	// Writers: shots/findings through the recorder tap, debt hooks, ticks.
	work(func(i int) {
		tr := rec.NextTrace()
		ring.Emit(trace.Event{Kind: trace.KindShot, Op: "dbflip", Trace: tr})
		ring.Emit(trace.Event{Kind: trace.KindFinding, Trace: tr})
	})
	work(func(i int) {
		debt.SweepStart(1)
		debt.ElementScheduled("checksum")
		debt.ElementDone("checksum")
		debt.SweepEnd()
	})
	work(func(i int) { p.Tick() })
	// Readers.
	for r := 0; r < 3; r++ {
		work(func(i int) {
			st := p.Status()
			_ = st.State.String()
			_ = p.State()
			_ = reg.Snapshot()
		})
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()

	if p.Detect().Snapshot(rec.Now()).Joined == 0 {
		t.Fatal("stress run joined nothing")
	}
}

func TestStatusRoundTripAndText(t *testing.T) {
	rec := trace.New()
	p := NewPlane(SLO{}, rec.Now)
	debt := NewDebtMeter(200 * time.Millisecond)
	p.SetDebt(debt)
	p.AddObjective(Objective{
		Name: "shed-rate", Subsystem: "serving", Bound: 1,
		Value: func(time.Duration) float64 { return 0 },
	})
	debt.SweepStart(1)
	debt.ElementScheduled("checksum")
	debt.ElementDone("checksum")
	debt.SweepEnd()
	p.Tick()

	st := p.Status()
	data, err := st.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseStatus(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.State != st.State || len(back.Subsystems) != 1 || back.Subsystems[0].Name != "serving" {
		t.Fatalf("round trip mismatch: %+v", back)
	}
	if back.AuditDebt == nil || back.AuditDebt.SweepsCompleted != 1 {
		t.Fatalf("debt lost in round trip: %+v", back.AuditDebt)
	}
	if back.Detection == nil {
		t.Fatal("detection lost in round trip")
	}

	var sb strings.Builder
	if err := st.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"health: ok", "subsystem serving", "shed-rate", "detection:", "audit debt:"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("text output missing %q:\n%s", want, sb.String())
		}
	}

	if _, err := ParseStatus([]byte(`{"state":"nonsense"}`)); err == nil {
		t.Fatal("garbage state accepted")
	}
}
