package health

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// Status is the health document served by the HEALTH wire op, GET
// /healthz, and `dbctl health`.
type Status struct {
	State State `json:"state"`
	// Role is the node's replication role ("primary", "standby",
	// "standby-serving"), set by the server so a read-serving standby's
	// shadow-audit state is attributed to the standby, not misread as the
	// primary's. Empty when the node does not replicate.
	Role       string           `json:"role,omitempty"`
	Subsystems []Subsystem      `json:"subsystems"`
	Detection  *DetectionStatus `json:"detection,omitempty"`
	AuditDebt  *DebtStatus      `json:"audit_debt,omitempty"`
}

// Subsystem is one subsystem's state plus its objectives.
type Subsystem struct {
	Name       string            `json:"name"`
	State      State             `json:"state"`
	Objectives []ObjectiveStatus `json:"objectives"`
}

// ObjectiveStatus is one objective's latest evaluation.
type ObjectiveStatus struct {
	Name       string  `json:"name"`
	State      State   `json:"state"`
	Value      float64 `json:"value"`
	Bound      float64 `json:"bound"`
	ShortBurn  float64 `json:"short_burn"`
	LongBurn   float64 `json:"long_burn"`
	Violations uint64  `json:"violations"`
}

// DetectionStatus is the wire form of DetectionStats (milliseconds, so
// the JSON reads naturally).
type DetectionStatus struct {
	Joined       uint64  `json:"joined"`
	WindowJoined int     `json:"window_joined"`
	P50Ms        float64 `json:"p50_ms"`
	P99Ms        float64 `json:"p99_ms"`
	OpenShots    int     `json:"open_shots"`
	WatermarkMs  float64 `json:"watermark_ms"`
	Overruns     uint64  `json:"overruns"`
	Evicted      uint64  `json:"evicted,omitempty"`
}

// Status assembles the full health document: overall and per-subsystem
// states, the detection tracker, and (when attached) audit debt. It
// self-ticks a stale evaluator first, so the document is fresh even when
// the executor is saturated.
func (p *Plane) Status() Status {
	subs := p.eval.snapshot()
	st := Status{State: p.State(), Subsystems: subs}
	ds := p.det.Snapshot(p.now())
	st.Detection = &DetectionStatus{
		Joined:       ds.Joined,
		WindowJoined: ds.WindowJoined,
		P50Ms:        float64(ds.P50) / float64(time.Millisecond),
		P99Ms:        float64(ds.P99) / float64(time.Millisecond),
		OpenShots:    ds.OpenShots,
		WatermarkMs:  float64(ds.OldestOpen) / float64(time.Millisecond),
		Overruns:     ds.Overruns,
		Evicted:      ds.Evicted,
	}
	if p.debt != nil {
		st.AuditDebt = p.debt.Status()
	}
	return st
}

// MarshalJSON commits the document shape explicitly.
func (s Status) MarshalJSON() ([]byte, error) {
	type plain Status
	return json.Marshal(plain(s))
}

// ParseStatus decodes a Status document — the client half of the HEALTH
// wire op and /healthz.
func ParseStatus(data []byte) (Status, error) {
	var s Status
	if err := json.Unmarshal(data, &s); err != nil {
		return Status{}, fmt.Errorf("health: parse status: %w", err)
	}
	return s, nil
}

// WriteText renders the document as aligned human-readable lines — the
// /healthz?format=text and `dbctl health` body.
func (s Status) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "health: %s\n", s.State); err != nil {
		return err
	}
	if s.Role != "" {
		if _, err := fmt.Fprintf(w, "role: %s\n", s.Role); err != nil {
			return err
		}
	}
	for _, sub := range s.Subsystems {
		if _, err := fmt.Fprintf(w, "subsystem %-12s %s\n", sub.Name, sub.State); err != nil {
			return err
		}
		for _, o := range sub.Objectives {
			if _, err := fmt.Fprintf(w, "  %-18s %-9s value=%.2f bound=%.2f burn=%.2f/%.2f violations=%d\n",
				o.Name, o.State, o.Value, o.Bound, o.ShortBurn, o.LongBurn, o.Violations); err != nil {
				return err
			}
		}
	}
	if d := s.Detection; d != nil {
		if _, err := fmt.Fprintf(w,
			"detection: joined=%d window=%d p50=%.1fms p99=%.1fms open_shots=%d watermark=%.1fms overruns=%d\n",
			d.Joined, d.WindowJoined, d.P50Ms, d.P99Ms, d.OpenShots, d.WatermarkMs, d.Overruns); err != nil {
			return err
		}
	}
	if d := s.AuditDebt; d != nil {
		if _, err := fmt.Fprintf(w,
			"audit debt: behind=%d max_behind=%d sweeps=%d/%d elements=%d/%d overruns=%d last_gap=%.0fms\n",
			d.Behind, d.MaxBehind, d.SweepsCompleted, d.SweepsStarted,
			d.ElementsCompleted, d.ElementsScheduled, d.IntervalOverruns, d.LastGapMs); err != nil {
			return err
		}
		names := make([]string, 0, len(d.Elements))
		for n := range d.Elements {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			e := d.Elements[n]
			if _, err := fmt.Fprintf(w, "  %-18s scheduled=%d completed=%d\n", n, e.Scheduled, e.Completed); err != nil {
				return err
			}
		}
	}
	return nil
}
