package health

import (
	"sync"
	"sync/atomic"
	"time"
)

// Objective is one declarative SLO: a measured value, the bound it must
// stay within, and the error budget its violations burn.
type Objective struct {
	// Name identifies the objective ("detect-p99", "shed-rate", ...).
	Name string
	// Subsystem groups objectives for the per-subsystem state machine
	// ("audit", "serving", "replication").
	Subsystem string
	// Value returns the current measurement at recorder time now. It is
	// called under the evaluator lock on each tick and may take locks of
	// its own.
	Value func(now time.Duration) float64
	// Bound is the SLO threshold: a sample with Value > Bound violates.
	Bound float64
	// Budget overrides the SLO-wide violation budget when positive.
	Budget float64
}

// evalSample is one windowed evaluation outcome.
type evalSample struct {
	at  time.Duration
	bad bool
}

// objState carries one objective's sample window and state machine.
type objState struct {
	o      Objective
	ring   []evalSample
	next   int
	filled bool

	state  State
	streak int // consecutive evaluations at a better raw level

	lastValue  float64
	shortBurn  float64
	longBurn   float64
	violations uint64
}

// Evaluator runs the declared objectives through multi-window error-
// budget burn rates and a per-subsystem OK/DEGRADED/CRITICAL state
// machine with hysteresis. All methods are safe from any goroutine.
type Evaluator struct {
	slo     SLO
	now     func() time.Duration
	overall atomic.Int32

	mu       sync.Mutex
	objs     []*objState
	subs     []string // subsystem order of first appearance
	subState map[string]*atomic.Int32
	lastTick time.Duration
	ticked   bool
}

// NewEvaluator builds an evaluator on the given clock. slo must already
// have defaults applied (NewPlane does this).
func NewEvaluator(slo SLO, now func() time.Duration) *Evaluator {
	return &Evaluator{slo: slo, now: now, subState: make(map[string]*atomic.Int32, 4)}
}

// Add declares an objective. Wire all objectives before evaluation
// starts.
func (e *Evaluator) Add(o Objective) {
	if o.Budget <= 0 {
		o.Budget = e.slo.Budget
	}
	ringCap := int(e.slo.LongWindow/e.slo.EvalPeriod) + 8
	if ringCap < 16 {
		ringCap = 16
	}
	if ringCap > 4096 {
		ringCap = 4096
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.objs = append(e.objs, &objState{o: o, ring: make([]evalSample, ringCap)})
	if _, ok := e.subState[o.Subsystem]; !ok {
		e.subs = append(e.subs, o.Subsystem)
		e.subState[o.Subsystem] = &atomic.Int32{}
	}
}

// Tick evaluates every objective once, if at least EvalPeriod has passed
// since the previous evaluation.
func (e *Evaluator) Tick() {
	now := e.now()
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.ticked && now-e.lastTick < e.slo.EvalPeriod {
		return
	}
	e.tickLocked(now)
}

func (e *Evaluator) tickLocked(now time.Duration) {
	e.ticked = true
	e.lastTick = now
	worstAll := OK
	worstSub := make(map[string]State, len(e.subs))
	for _, s := range e.objs {
		v := s.o.Value(now)
		bad := v > s.o.Bound
		s.lastValue = v
		if bad {
			s.violations++
		}
		s.ring[s.next] = evalSample{at: now, bad: bad}
		s.next++
		if s.next == len(s.ring) {
			s.next = 0
			s.filled = true
		}
		s.shortBurn = s.burn(now, e.slo.ShortWindow, e.slo.MinSamples)
		s.longBurn = s.burn(now, e.slo.LongWindow, e.slo.MinSamples)

		raw := OK
		if s.shortBurn >= e.slo.DegradeBurn {
			raw = Degraded
		}
		if s.shortBurn >= e.slo.CritBurn && s.longBurn >= e.slo.DegradeBurn {
			raw = Critical
		}
		// Hysteresis: degrade immediately, recover one level at a time
		// only after RecoverStreak consecutive cleaner evaluations. A
		// value flapping across its bound keeps resetting the streak and
		// the state holds.
		if raw >= s.state {
			s.state = raw
			s.streak = 0
		} else {
			s.streak++
			if s.streak >= e.slo.RecoverStreak {
				s.state--
				s.streak = 0
			}
		}

		if s.state > worstSub[s.o.Subsystem] {
			worstSub[s.o.Subsystem] = s.state
		}
		if s.state > worstAll {
			worstAll = s.state
		}
	}
	for name, st := range e.subState {
		st.Store(int32(worstSub[name]))
	}
	e.overall.Store(int32(worstAll))
}

// burn computes the error-budget burn rate over the window ending now:
// the violating fraction of in-window samples divided by the objective's
// budget. Fewer than minSamples in-window samples report zero, so one
// early violation cannot page before the window has meaning.
func (s *objState) burn(now, window time.Duration, minSamples int) float64 {
	n := s.next
	if s.filled {
		n = len(s.ring)
	}
	total, bad := 0, 0
	for i := 0; i < n; i++ {
		if sm := s.ring[i]; now-sm.at <= window {
			total++
			if sm.bad {
				bad++
			}
		}
	}
	if total < minSamples {
		return 0
	}
	return float64(bad) / float64(total) / s.o.Budget
}

// State returns the overall state from the latest evaluation. Lock-free.
func (e *Evaluator) State() State { return State(e.overall.Load()) }

// SubsystemState returns one subsystem's state from the latest
// evaluation. Lock-free; unknown names report OK.
func (e *Evaluator) SubsystemState(name string) State {
	e.mu.Lock()
	st := e.subState[name]
	e.mu.Unlock()
	if st == nil {
		return OK
	}
	return State(st.Load())
}

// Subsystems lists the declared subsystems in order of first appearance.
func (e *Evaluator) Subsystems() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]string(nil), e.subs...)
}

// snapshot renders the per-subsystem view, self-ticking first when the
// last evaluation is stale (a wedged executor must not freeze /healthz).
func (e *Evaluator) snapshot() []Subsystem {
	now := e.now()
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.ticked || now-e.lastTick >= e.slo.EvalPeriod {
		e.tickLocked(now)
	}
	out := make([]Subsystem, 0, len(e.subs))
	for _, name := range e.subs {
		sub := Subsystem{Name: name, State: State(e.subState[name].Load())}
		for _, s := range e.objs {
			if s.o.Subsystem != name {
				continue
			}
			sub.Objectives = append(sub.Objectives, ObjectiveStatus{
				Name:       s.o.Name,
				State:      s.state,
				Value:      s.lastValue,
				Bound:      s.o.Bound,
				ShortBurn:  s.shortBurn,
				LongBurn:   s.longBurn,
				Violations: s.violations,
			})
		}
		out = append(out, sub)
	}
	return out
}
