// Package health is the server's self-monitoring plane: it watches the
// audited database serve live traffic and answers, continuously and from
// inside the process, the question the paper's framework exists to keep
// true — is corruption still being detected fast enough?
//
// Three cooperating pieces:
//
//   - Detector: an online detection-latency tracker fed by the trace
//     recorder's live tap. Injection shots open an entry keyed by trace
//     ID; the audit finding that repairs the same region closes it. The
//     tracker keeps windowed p50/p99 detection latency plus an open-shot
//     age watermark, so a fault the audits have NOT yet found is visible
//     as a rising age, not an absence of data.
//   - DebtMeter: audit-debt accounting published from the audit
//     scheduler — scheduled-vs-completed sweeps and per-checker elements,
//     sweep-interval overruns, and a behind-schedule gauge. This is the
//     observable substrate for the ROADMAP's Audit-QoS pacing work.
//   - Evaluator: a declarative SLO engine. Each Objective samples a value
//     (detection p99, shed rate, replication lag, heartbeat-miss rate,
//     audit debt) against a bound on every tick; violations burn a
//     per-objective error budget over short and long windows, and the
//     burn rates drive a per-subsystem OK/DEGRADED/CRITICAL state machine
//     with hysteresis (degrade immediately, recover only after a streak
//     of clean evaluations, so a value oscillating across its bound
//     cannot flap the state).
//
// Plane bundles the three and renders the Status document served by the
// HEALTH wire op, GET /healthz, and `dbctl health`.
package health

import (
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// State is a subsystem (or overall) health level. Order matters: higher
// is worse, and aggregation takes the max.
type State int32

const (
	OK State = iota
	Degraded
	Critical
)

// String returns the lowercase state name used across JSON, text, and
// watch output.
func (s State) String() string {
	switch s {
	case OK:
		return "ok"
	case Degraded:
		return "degraded"
	case Critical:
		return "critical"
	}
	return fmt.Sprintf("state(%d)", int32(s))
}

// MarshalText renders the state name, so Status marshals states as
// strings.
func (s State) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText parses a state name.
func (s *State) UnmarshalText(b []byte) error {
	v, ok := ParseState(string(b))
	if !ok {
		return fmt.Errorf("health: unknown state %q", b)
	}
	*s = v
	return nil
}

// ParseState resolves a state name; ok is false for unknown names.
func ParseState(name string) (State, bool) {
	switch name {
	case "ok":
		return OK, true
	case "degraded":
		return Degraded, true
	case "critical":
		return Critical, true
	}
	return OK, false
}

// SLO declares the service-level objectives the plane evaluates and the
// evaluator's windowing. Zero values take the documented defaults, so
// `health.SLO{}` is a complete, sane declaration.
type SLO struct {
	// DetectP99 bounds the windowed detection-latency p99 AND the open-
	// shot age watermark: an injected fault should be found and repaired
	// within this long. Default 2s (ten 200ms audit periods).
	DetectP99 time.Duration
	// DetectWindow is the detection-latency sample window. Default 60s.
	DetectWindow time.Duration
	// MaxShedRate bounds request sheds per second. Default 1.
	MaxShedRate float64
	// MaxReplLag bounds the standby's replication lag in WAL records.
	// Default 512. Only evaluated when replication is wired.
	MaxReplLag float64
	// MaxHeartbeatMissPerMin bounds audit heartbeat misses per minute.
	// Default 1.
	MaxHeartbeatMissPerMin float64
	// MaxAuditBehind bounds how many periodic sweeps the audit scheduler
	// may run behind its own cadence. Default 3.
	MaxAuditBehind float64

	// Budget is the fraction of evaluation samples allowed to violate an
	// objective before its error budget burns at rate 1. Default 0.1.
	Budget float64
	// ShortWindow / LongWindow are the burn-rate windows. Defaults 10s
	// and 60s.
	ShortWindow time.Duration
	LongWindow  time.Duration
	// EvalPeriod is the minimum spacing between evaluation samples.
	// Default 250ms.
	EvalPeriod time.Duration
	// DegradeBurn and CritBurn are the burn-rate thresholds: DEGRADED
	// when the short window burns >= DegradeBurn; CRITICAL when the
	// short window burns >= CritBurn while the long window also burns
	// >= DegradeBurn. Defaults 1 and 2.
	DegradeBurn float64
	CritBurn    float64
	// RecoverStreak is how many consecutive cleaner evaluations a state
	// needs before stepping one level toward OK (degrading is always
	// immediate). Default 4.
	RecoverStreak int
	// MinSamples is how many samples a burn window needs before it
	// reports a nonzero burn, so a single early violation cannot page.
	// Default 8.
	MinSamples int
}

func (s *SLO) applyDefaults() {
	if s.DetectP99 <= 0 {
		s.DetectP99 = 2 * time.Second
	}
	if s.DetectWindow <= 0 {
		s.DetectWindow = 60 * time.Second
	}
	if s.MaxShedRate <= 0 {
		s.MaxShedRate = 1
	}
	if s.MaxReplLag <= 0 {
		s.MaxReplLag = 512
	}
	if s.MaxHeartbeatMissPerMin <= 0 {
		s.MaxHeartbeatMissPerMin = 1
	}
	if s.MaxAuditBehind <= 0 {
		s.MaxAuditBehind = 3
	}
	if s.Budget <= 0 {
		s.Budget = 0.1
	}
	if s.ShortWindow <= 0 {
		s.ShortWindow = 10 * time.Second
	}
	if s.LongWindow <= 0 {
		s.LongWindow = 60 * time.Second
	}
	if s.EvalPeriod <= 0 {
		s.EvalPeriod = 250 * time.Millisecond
	}
	if s.DegradeBurn <= 0 {
		s.DegradeBurn = 1
	}
	if s.CritBurn <= 0 {
		s.CritBurn = 2
	}
	if s.RecoverStreak <= 0 {
		s.RecoverStreak = 4
	}
	if s.MinSamples <= 0 {
		s.MinSamples = 8
	}
}

// Plane bundles the detector, the SLO evaluator, and (when auditing is
// armed) the debt meter behind one construction point and one Status
// document.
type Plane struct {
	slo  SLO
	now  func() time.Duration
	det  *Detector
	eval *Evaluator
	debt *DebtMeter
}

// NewPlane builds a health plane on the given clock (normally the trace
// recorder's, so detection latencies share the journal's timebase).
// Defaults are applied to slo first; the caller declares objectives with
// AddObjective.
func NewPlane(slo SLO, now func() time.Duration) *Plane {
	slo.applyDefaults()
	return &Plane{
		slo:  slo,
		now:  now,
		det:  NewDetector(slo.DetectWindow, slo.DetectP99, 0),
		eval: NewEvaluator(slo, now),
	}
}

// SLO returns the declaration with defaults applied.
func (p *Plane) SLO() SLO { return p.slo }

// Detect exposes the detection-latency tracker.
func (p *Plane) Detect() *Detector { return p.det }

// SetDebt attaches the audit-debt meter (nil when auditing is off).
func (p *Plane) SetDebt(m *DebtMeter) { p.debt = m }

// Debt returns the attached audit-debt meter, or nil.
func (p *Plane) Debt() *DebtMeter { return p.debt }

// AddObjective declares one SLO objective. Not safe concurrently with
// Tick/Status; wire all objectives before the server starts evaluating.
func (p *Plane) AddObjective(o Objective) { p.eval.Add(o) }

// OnTraceEvent is the recorder tap (trace.Recorder.Observe): it feeds
// region injection shots and audit findings to the detection tracker.
// Anything else returns after one switch, keeping the emit path cheap.
func (p *Plane) OnTraceEvent(ev trace.Event) {
	switch ev.Kind {
	case trace.KindShot:
		// Only region shots ("dbflip") are joined by region coverage;
		// procedure text shots join through PECOS requests instead and
		// would sit forever as false open debt.
		if ev.Op == "dbflip" && ev.Trace != 0 {
			p.det.Shot(ev.Trace, ev.At)
		}
	case trace.KindFinding:
		if ev.Trace != 0 {
			p.det.Finding(ev.Trace, ev.At)
		}
	}
}

// Tick runs an SLO evaluation if at least EvalPeriod has elapsed since
// the last one. Safe from any goroutine; the server drives it from the
// executor clock.
func (p *Plane) Tick() { p.eval.Tick() }

// State returns the overall health state (max over subsystems) from the
// latest evaluation. Lock-free.
func (p *Plane) State() State { return p.eval.State() }

// Rate converts a cumulative counter read into a per-perUnit rate
// measured between evaluator ticks. The returned func keeps private
// state and must only be used as one Objective's Value (the evaluator
// serializes calls under its lock).
func Rate(load func() float64, perUnit time.Duration) func(now time.Duration) float64 {
	var prev float64
	var prevAt time.Duration
	primed := false
	return func(now time.Duration) float64 {
		v := load()
		if !primed {
			primed, prev, prevAt = true, v, now
			return 0
		}
		dt := now - prevAt
		if dt <= 0 {
			return 0
		}
		rate := (v - prev) * float64(perUnit) / float64(dt)
		prev, prevAt = v, now
		return rate
	}
}

// RegisterMetrics publishes the plane's gauges, so STATS2 (and with it
// dbload -watch and the scenario sampler) carries health state with no
// extra plumbing. Call after all objectives are added.
func (p *Plane) RegisterMetrics(reg *metrics.Registry) {
	reg.GaugeFunc("health.state", func() int64 { return int64(p.State()) })
	for _, name := range p.eval.Subsystems() {
		name := name
		reg.GaugeFunc("health."+name+".state", func() int64 {
			return int64(p.eval.SubsystemState(name))
		})
	}
	det := p.det
	now := p.now
	reg.GaugeFunc("health.detect.open_shots", func() int64 {
		return int64(det.Snapshot(now()).OpenShots)
	})
	reg.GaugeFunc("health.detect.watermark_ms", func() int64 {
		return det.Snapshot(now()).OldestOpen.Milliseconds()
	})
	reg.GaugeFunc("health.detect.p99_ms", func() int64 {
		return det.Snapshot(now()).P99.Milliseconds()
	})
	reg.GaugeFunc("health.detect.joined", func() int64 {
		return int64(det.Snapshot(now()).Joined)
	})
	reg.GaugeFunc("health.detect.overruns", func() int64 {
		return int64(det.Snapshot(now()).Overruns)
	})
	if p.debt != nil {
		p.debt.Register(reg)
	}
}
