package health

import (
	"testing"
	"time"
)

// testClock is a manually advanced evaluator clock.
type testClock struct{ at time.Duration }

func (c *testClock) now() time.Duration { return c.at }
func (c *testClock) advance(d time.Duration) {
	c.at += d
}

// testSLO gives deterministic windows: 1s eval period, 4s short window,
// 8s long window, no minimum-sample gate, recover after 3 clean ticks.
func testSLO() SLO {
	s := SLO{
		EvalPeriod:    time.Second,
		ShortWindow:   4 * time.Second,
		LongWindow:    8 * time.Second,
		DegradeBurn:   1,
		CritBurn:      2,
		RecoverStreak: 3,
		MinSamples:    1,
		Budget:        0.5,
	}
	s.applyDefaults()
	s.MinSamples = 1 // applyDefaults would leave 1, set explicitly for clarity
	return s
}

// step advances one eval period and ticks.
func step(e *Evaluator, c *testClock) {
	c.advance(time.Second)
	e.Tick()
}

func TestEvaluatorBurnAndHysteresis(t *testing.T) {
	cases := []struct {
		name string
		// values fed tick by tick (one per second); bound is 10.
		values []float64
		// want is the expected state after each tick.
		want []State
	}{
		{
			name:   "stays ok under bound",
			values: []float64{1, 2, 3, 4, 5, 6},
			want:   []State{OK, OK, OK, OK, OK, OK},
		},
		{
			// Budget 0.5: one violation among the first samples burns the
			// short window at rate >= 1 immediately (1/1 / 0.5 = 2), and
			// with the long window equally saturated the objective goes
			// critical, then recovers only after 3 consecutive cleaner
			// evaluations — stepping through DEGRADED, not jumping.
			// Budget 0.5: the first violating tick burns the short window
			// at 2x (1/1 / 0.5) with the long window equally saturated, so
			// the objective goes critical at once. Clean ticks then age the
			// violations out of the 4s short window, but recovery needs 3
			// consecutive cleaner evaluations per level and steps through
			// DEGRADED rather than jumping to OK: ticks 4-5 still see burn
			// >= 1 (raw degraded, streak builds), tick 6 completes the
			// streak and steps to degraded, tick 9 completes the next
			// streak and reaches OK.
			name:   "degrade fast recover slow",
			values: []float64{50, 50, 50, 1, 1, 1, 1, 1, 1, 1, 1, 1},
			want: []State{
				Critical, Critical, Critical,
				Critical, Critical,
				Degraded, Degraded, Degraded,
				OK, OK, OK, OK,
			},
		},
		{
			// A value oscillating across the bound keeps the short-window
			// burn hovering around 1: every raw DEGRADED evaluation resets
			// the recovery streak, so once degraded the state holds — no
			// flapping back to OK between violating ticks. (The opening
			// ticks are critical for the same single-sample-burn reason as
			// above; hysteresis then steps down to the oscillation's
			// holding level.)
			name:   "no flapping across a boundary",
			values: []float64{50, 1, 50, 1, 50, 1, 50, 1, 50, 1},
			want: []State{
				Critical, Critical, Critical,
				Degraded, Degraded, Degraded, Degraded,
				Degraded, Degraded, Degraded,
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clk := &testClock{}
			var v float64
			e := NewEvaluator(testSLO(), clk.now)
			e.Add(Objective{
				Name:      "probe",
				Subsystem: "test",
				Bound:     10,
				Value:     func(time.Duration) float64 { return v },
			})
			for i, val := range tc.values {
				v = val
				step(e, clk)
				if got := e.State(); got != tc.want[i] {
					t.Fatalf("tick %d (value %v): state = %s, want %s", i, val, got, tc.want[i])
				}
				if got := e.SubsystemState("test"); got != e.State() {
					t.Fatalf("tick %d: subsystem state %s != overall %s", i, got, e.State())
				}
			}
		})
	}
}

func TestEvaluatorMinSamplesGate(t *testing.T) {
	clk := &testClock{}
	slo := testSLO()
	slo.MinSamples = 4
	e := NewEvaluator(slo, clk.now)
	e.Add(Objective{
		Name: "probe", Subsystem: "test", Bound: 10,
		Value: func(time.Duration) float64 { return 100 },
	})
	// The first three violating ticks are below the sample floor: no burn,
	// no state change. The fourth crosses it and degrades.
	for i := 0; i < 3; i++ {
		step(e, clk)
		if got := e.State(); got != OK {
			t.Fatalf("tick %d below sample floor: state = %s, want ok", i, got)
		}
	}
	step(e, clk)
	if got := e.State(); got == OK {
		t.Fatal("state still ok after the sample floor was crossed")
	}
}

func TestEvaluatorWorstSubsystemWins(t *testing.T) {
	clk := &testClock{}
	e := NewEvaluator(testSLO(), clk.now)
	bad := 0.0
	e.Add(Objective{Name: "a", Subsystem: "serving", Bound: 10,
		Value: func(time.Duration) float64 { return 0 }})
	e.Add(Objective{Name: "b", Subsystem: "audit", Bound: 10,
		Value: func(time.Duration) float64 { return bad }})
	step(e, clk)
	if e.State() != OK {
		t.Fatalf("initial state = %s, want ok", e.State())
	}
	bad = 100
	step(e, clk)
	if e.SubsystemState("serving") != OK {
		t.Fatalf("healthy subsystem degraded: %s", e.SubsystemState("serving"))
	}
	if e.SubsystemState("audit") == OK {
		t.Fatal("violating subsystem still ok")
	}
	if e.State() != e.SubsystemState("audit") {
		t.Fatalf("overall %s != worst subsystem %s", e.State(), e.SubsystemState("audit"))
	}
}

func TestRate(t *testing.T) {
	var c float64
	r := Rate(func() float64 { return c }, time.Second)
	if got := r(0); got != 0 {
		t.Fatalf("unprimed rate = %v, want 0", got)
	}
	c = 10
	if got := r(2 * time.Second); got != 5 {
		t.Fatalf("rate = %v, want 5/s", got)
	}
	c = 10
	if got := r(3 * time.Second); got != 0 {
		t.Fatalf("flat counter rate = %v, want 0", got)
	}
}
