// Package metrics is the observability substrate of the serving stack: a
// small, allocation-free, concurrency-safe registry of named counters,
// gauges, and fixed-bucket latency histograms, with a snapshot encoder in
// both JSON and text form.
//
// The paper's framework runs off exactly this kind of runtime signal —
// per-table access counters drive prioritized audit triggering (§4.4.1),
// error history drives escalation, heartbeat state drives restart — but
// until this package those counters were scattered ad-hoc fields. The
// registry gives every subsystem one uniform way to publish, and every
// consumer (the wire STATS2 op, the dbserve /statsz HTTP endpoint, the
// dbload -watch loop) one uniform way to observe a server under load.
//
// Design constraints, in order:
//
//   - Hot-path updates (Counter.Add, Gauge.Set, Histogram.Observe) are a
//     handful of atomic operations: no locks, no allocation, so the server
//     can record every request without measurable distortion ("Boosting
//     Device Utilization in Control Flow Auditing" motivates measuring the
//     checker without perturbing it).
//   - Registration is rare and mutex-guarded; Snapshot copies the entry
//     list under the lock but evaluates outside it, so gauge functions may
//     take their own locks without ordering hazards.
//   - Histograms use fixed exponential buckets; quantiles (p50/p95/p99)
//     are extracted from the bucket counts by linear interpolation, so a
//     snapshot is O(buckets) with no sample retention.
package metrics

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an atomically updated instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by d.
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Histogram is a fixed-bucket distribution accumulator. Bucket i counts
// observations v with v <= bounds[i] (and below any earlier bound); one
// implicit overflow bucket catches everything above the last bound. Count,
// sum, and max are tracked exactly; quantiles are interpolated from the
// bucket counts.
type Histogram struct {
	bounds []int64 // ascending upper bounds
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Int64
	max    atomic.Int64
}

// NewHistogram builds a detached histogram over the given ascending bucket
// bounds (most callers want Registry.Histogram instead).
func NewHistogram(bounds []int64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram bounds not ascending at %d", i))
		}
	}
	b := make([]int64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// LatencyBuckets returns the default latency bucket bounds: powers of two
// from 1µs to ~16.8s (25 buckets), in nanoseconds. The range comfortably
// covers a loopback round-trip on the low end and a wedged executor on the
// high end.
func LatencyBuckets() []int64 {
	b := make([]int64, 25)
	for i := range b {
		b[i] = int64(time.Microsecond) << i
	}
	return b
}

// Observe folds one observation into the histogram. Negative values clamp
// to zero. Allocation-free.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	// Manual binary search: first bucket whose bound is >= v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			break
		}
	}
}

// ObserveSince observes the nanoseconds elapsed since t0.
func (h *Histogram) ObserveSince(t0 time.Time) { h.Observe(int64(time.Since(t0))) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// SnapshotHistogram captures the distribution at one instant.
func (h *Histogram) SnapshotHistogram() HistogramSnapshot {
	return h.snapshot(false)
}

// SnapshotHistogramFull is SnapshotHistogram with the raw bucket bounds
// and per-bucket counts attached — the source for Prometheus exposition,
// where cumulative buckets are first-class. The compact form keeps the
// STATS2 wire document small.
func (h *Histogram) SnapshotHistogramFull() HistogramSnapshot {
	return h.snapshot(true)
}

func (h *Histogram) snapshot(full bool) HistogramSnapshot {
	// Read count last so the quantile ranks never exceed the bucket sums
	// under concurrent Observe (buckets are bumped before count).
	counts := make([]uint64, len(h.counts))
	var total uint64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	s := HistogramSnapshot{
		Count: total,
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
	}
	s.P50 = quantile(h.bounds, counts, total, s.Max, 0.50)
	s.P95 = quantile(h.bounds, counts, total, s.Max, 0.95)
	s.P99 = quantile(h.bounds, counts, total, s.Max, 0.99)
	if full {
		s.Bounds = append([]int64(nil), h.bounds...)
		s.Buckets = counts
	}
	return s
}

// quantile interpolates the q-th quantile from bucket counts using a
// continuous rank: the q-th quantile sits pos = q·total observations into
// the distribution, and within the bucket containing pos the value is
// linearly interpolated between the bucket's bounds (the overflow bucket
// interpolates toward the observed max, and the top bound clamps to max
// so a distribution ending mid-bucket is not stretched to the bound).
func quantile(bounds []int64, counts []uint64, total uint64, max int64, q float64) int64 {
	if total == 0 {
		return 0
	}
	pos := q * float64(total)
	if pos > float64(total) {
		pos = float64(total)
	}
	var seen uint64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		if pos > float64(seen+c) {
			seen += c
			continue
		}
		// pos lands in bucket i spanning (lo, hi].
		var lo int64
		if i > 0 {
			lo = bounds[i-1]
		}
		hi := max
		if i < len(bounds) && bounds[i] < hi {
			hi = bounds[i]
		}
		if hi < lo {
			hi = lo
		}
		frac := (pos - float64(seen)) / float64(c)
		if frac < 0 {
			frac = 0
		} else if frac > 1 {
			frac = 1
		}
		return lo + int64(frac*float64(hi-lo)+0.5)
	}
	return max
}

// HistogramSnapshot is the exported view of a histogram: exact count, sum,
// and max plus interpolated percentiles, all in the observed unit
// (nanoseconds for latency histograms). Bounds and Buckets carry the raw
// distribution (ascending upper bounds plus one trailing overflow bucket)
// only when taken via SnapshotHistogramFull / Registry.SnapshotFull; the
// compact wire form omits them.
type HistogramSnapshot struct {
	Count   uint64   `json:"count"`
	Sum     int64    `json:"sum"`
	Max     int64    `json:"max"`
	P50     int64    `json:"p50"`
	P95     int64    `json:"p95"`
	P99     int64    `json:"p99"`
	Bounds  []int64  `json:"bounds,omitempty"`
	Buckets []uint64 `json:"buckets,omitempty"`
}

// Mean returns the average observation, or 0 when empty.
func (s HistogramSnapshot) Mean() int64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / int64(s.Count)
}

// entry is one registered metric; exactly one of the four fields is set.
type entry struct {
	name string
	c    *Counter
	g    *Gauge
	gf   func() int64
	h    *Histogram
}

// Registry is a named collection of metrics. Registration (the *Counter /
// Gauge / GaugeFunc / Histogram methods) is get-or-create by name and safe
// for concurrent use; re-registering a name as a different kind panics, as
// that is always a programming error.
//
// A Registry value is a view onto shared state: WithPrefix returns a new
// view over the same entries whose registrations are transparently
// namespaced, which is how N database shards publish into one snapshot
// without clobbering each other's gauges. Snapshots taken through any view
// cover the whole shared state, prefixed names included.
type Registry struct {
	s      *regState
	prefix string
}

// regState is the storage every prefix view of one registry shares.
type regState struct {
	mu      sync.Mutex
	entries map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{s: &regState{entries: make(map[string]*entry)}}
}

// WithPrefix returns a view of the same registry that prepends p to every
// name it registers or resolves. Prefixes compose: r.WithPrefix("a.").
// WithPrefix("b.") namespaces under "a.b.". The view shares storage with r,
// so a name registered through the view is visible (under its full name)
// to snapshots taken anywhere.
func (r *Registry) WithPrefix(p string) *Registry {
	return &Registry{s: r.s, prefix: r.prefix + p}
}

func (r *regState) lookup(name, kind string) *entry {
	e, ok := r.entries[name]
	if !ok {
		e = &entry{name: name}
		r.entries[name] = e
		return e
	}
	var have string
	switch {
	case e.c != nil:
		have = "counter"
	case e.g != nil:
		have = "gauge"
	case e.gf != nil:
		have = "gaugefunc"
	case e.h != nil:
		have = "histogram"
	}
	if have != kind {
		panic(fmt.Sprintf("metrics: %q already registered as %s, requested %s", name, have, kind))
	}
	return e
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.s.mu.Lock()
	defer r.s.mu.Unlock()
	e := r.s.lookup(r.prefix+name, "counter")
	if e.c == nil {
		e.c = &Counter{}
	}
	return e.c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.s.mu.Lock()
	defer r.s.mu.Unlock()
	e := r.s.lookup(r.prefix+name, "gauge")
	if e.g == nil {
		e.g = &Gauge{}
	}
	return e.g
}

// GaugeFunc registers a gauge computed on demand by fn at snapshot time.
// fn must be safe to call from any goroutine; it may take locks of its
// own. Re-registering a name replaces the function.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	r.s.mu.Lock()
	defer r.s.mu.Unlock()
	e := r.s.lookup(r.prefix+name, "gaugefunc")
	e.gf = fn
}

// Histogram returns the named histogram, creating it with the given bucket
// bounds if needed (bounds are ignored for an existing histogram; nil
// means LatencyBuckets).
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	r.s.mu.Lock()
	defer r.s.mu.Unlock()
	e := r.s.lookup(r.prefix+name, "histogram")
	if e.h == nil {
		if bounds == nil {
			bounds = LatencyBuckets()
		}
		e.h = NewHistogram(bounds)
	}
	return e.h
}

// Snapshot captures every registered metric at one instant. Gauge
// functions are evaluated outside the registry lock.
func (r *Registry) Snapshot() Snapshot { return r.snapshot(false) }

// SnapshotFull is Snapshot with raw histogram bucket data included — the
// Prometheus exposition source. The compact Snapshot stays the STATS2
// payload so the wire document does not grow with bucket arrays.
func (r *Registry) SnapshotFull() Snapshot { return r.snapshot(true) }

func (r *Registry) snapshot(full bool) Snapshot {
	r.s.mu.Lock()
	entries := make([]*entry, 0, len(r.s.entries))
	for _, e := range r.s.entries {
		entries = append(entries, e)
	}
	r.s.mu.Unlock()

	s := Snapshot{
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	for _, e := range entries {
		switch {
		case e.c != nil:
			s.Counters[e.name] = e.c.Load()
		case e.g != nil:
			s.Gauges[e.name] = e.g.Load()
		case e.gf != nil:
			s.Gauges[e.name] = e.gf()
		case e.h != nil:
			s.Histograms[e.name] = e.h.snapshot(full)
		}
	}
	return s
}
