package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// PromContentType is the content type of the Prometheus text exposition
// format emitted by WriteProm.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteProm renders the snapshot in the Prometheus text exposition format
// (version 0.0.4): counters and gauges as single samples, histograms as
// cumulative `_bucket{le="..."}` series plus `_sum` and `_count` when the
// snapshot carries raw bucket data (Registry.SnapshotFull), falling back
// to `_sum`/`_count` alone for compact snapshots. Metric names are
// sanitized (dots and other invalid runes become underscores); values stay
// in the observed unit, so latency histograms scrape in nanoseconds.
func (s Snapshot) WriteProm(w io.Writer) error {
	var names []string
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := promName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[n]); err != nil {
			return err
		}
	}
	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := promName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", pn, pn, s.Gauges[n]); err != nil {
			return err
		}
	}
	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if err := writePromHistogram(w, promName(n), s.Histograms[n]); err != nil {
			return err
		}
	}
	return nil
}

func writePromHistogram(w io.Writer, pn string, h HistogramSnapshot) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
		return err
	}
	if len(h.Buckets) == len(h.Bounds)+1 {
		var cum uint64
		for i, bound := range h.Bounds {
			cum += h.Buckets[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", pn, bound, cum); err != nil {
				return err
			}
		}
		cum += h.Buckets[len(h.Bounds)]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pn, cum); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", pn, h.Sum, pn, h.Count)
	return err
}

// promName maps a registry name onto the Prometheus metric-name alphabet
// [a-zA-Z_:][a-zA-Z0-9_:]*; every invalid rune becomes an underscore.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9' && i > 0:
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
