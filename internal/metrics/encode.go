package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// Snapshot is a point-in-time copy of every metric in a registry, grouped
// by kind. Gauge functions appear under Gauges. It marshals to stable JSON
// (map keys sort alphabetically) — the payload of the wire STATS2 op and
// the dbserve /statsz endpoint.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// MarshalJSON uses the default struct encoding; defined explicitly so the
// wire format is a documented commitment, not an accident.
func (s Snapshot) MarshalJSON() ([]byte, error) {
	type plain Snapshot // shed the method to avoid recursion
	return json.Marshal(plain(s))
}

// WriteText renders the snapshot as sorted expvar-style lines:
//
//	counter   audit.sweeps 17
//	gauge     server.queue.depth 0
//	histogram server.latency.DBread_fld count=100 p50=85µs p95=120µs p99=160µs max=1.2ms
//
// Latency histograms print durations; counters and gauges print raw
// values.
func (s Snapshot) WriteText(w io.Writer) error {
	var names []string
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, err := fmt.Fprintf(w, "counter   %s %d\n", n, s.Counters[n]); err != nil {
			return err
		}
	}
	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, err := fmt.Fprintf(w, "gauge     %s %d\n", n, s.Gauges[n]); err != nil {
			return err
		}
	}
	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		if _, err := fmt.Fprintf(w, "histogram %s count=%d p50=%v p95=%v p99=%v max=%v\n",
			n, h.Count,
			time.Duration(h.P50), time.Duration(h.P95), time.Duration(h.P99),
			time.Duration(h.Max)); err != nil {
			return err
		}
	}
	return nil
}

// ParseSnapshot decodes a JSON snapshot (the inverse of MarshalJSON) —
// the client half of STATS2, used by dbload -watch.
func ParseSnapshot(data []byte) (Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return Snapshot{}, fmt.Errorf("metrics: parse snapshot: %w", err)
	}
	return s, nil
}
