package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.count")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("a.gauge")
	g.Set(10)
	g.Add(-3)
	if got := g.Load(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
	// Get-or-create returns the same instance.
	if r.Counter("a.count") != c {
		t.Fatal("Counter did not return the registered instance")
	}
	r.GaugeFunc("a.fn", func() int64 { return 42 })
	s := r.Snapshot()
	if s.Counters["a.count"] != 5 || s.Gauges["a.gauge"] != 7 || s.Gauges["a.fn"] != 42 {
		t.Fatalf("snapshot mismatch: %+v", s)
	}
}

func TestWithPrefix(t *testing.T) {
	r := NewRegistry()
	v0 := r.WithPrefix("shard.0.")
	v1 := r.WithPrefix("shard.1.")
	v0.Gauge("queue.depth").Set(3)
	v1.Gauge("queue.depth").Set(8)
	// Same full name through the view and through the root resolves to the
	// same instance — the view is a namespace, not a separate registry.
	if v0.Gauge("queue.depth") != r.Gauge("shard.0.queue.depth") {
		t.Fatal("prefixed gauge is not the same instance as its full name")
	}
	// Counters registered unprefixed from two views' code paths merge.
	v0.WithPrefix("").Counter("x") // prefixes compose (empty is identity)
	if r.WithPrefix("a.").WithPrefix("b.").Counter("c") != r.Counter("a.b.c") {
		t.Fatal("composed prefixes did not resolve to the full name")
	}
	s := r.Snapshot()
	if s.Gauges["shard.0.queue.depth"] != 3 || s.Gauges["shard.1.queue.depth"] != 8 {
		t.Fatalf("snapshot missing prefixed gauges: %+v", s.Gauges)
	}
	// A snapshot through a view still covers the whole shared state.
	if sv := v1.Snapshot(); sv.Gauges["shard.0.queue.depth"] != 3 {
		t.Fatalf("view snapshot lost sibling entries: %+v", sv.Gauges)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("x")
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(LatencyBuckets())
	// Uniform 1..1000µs: p50 ≈ 500µs, p95 ≈ 950µs, p99 ≈ 990µs.
	for i := 1; i <= 1000; i++ {
		h.Observe(int64(i) * int64(time.Microsecond))
	}
	s := h.SnapshotHistogram()
	if s.Count != 1000 {
		t.Fatalf("count = %d, want 1000", s.Count)
	}
	if s.Max != 1000*int64(time.Microsecond) {
		t.Fatalf("max = %d", s.Max)
	}
	check := func(name string, got int64, want, tol time.Duration) {
		t.Helper()
		if d := time.Duration(got) - want; d < -tol || d > tol {
			t.Errorf("%s = %v, want %v ± %v", name, time.Duration(got), want, tol)
		}
	}
	// Within-bucket linear interpolation on a continuous rank recovers a
	// uniform distribution almost exactly even from coarse exponential
	// buckets, so the tolerance is tight.
	check("p50", s.P50, 500*time.Microsecond, 10*time.Microsecond)
	check("p95", s.P95, 950*time.Microsecond, 10*time.Microsecond)
	check("p99", s.P99, 990*time.Microsecond, 10*time.Microsecond)
	if s.P50 > s.P95 || s.P95 > s.P99 || time.Duration(s.P99) > time.Duration(s.Max) {
		t.Fatalf("percentiles not monotonic: p50=%d p95=%d p99=%d max=%d", s.P50, s.P95, s.P99, s.Max)
	}
}

func TestSnapshotFullBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []int64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(500)

	if s := r.Snapshot().Histograms["lat"]; s.Bounds != nil || s.Buckets != nil {
		t.Fatalf("compact snapshot leaked bucket data: %+v", s)
	}
	s := r.SnapshotFull().Histograms["lat"]
	if want := []int64{10, 100}; len(s.Bounds) != 2 || s.Bounds[0] != want[0] || s.Bounds[1] != want[1] {
		t.Fatalf("bounds = %v, want %v", s.Bounds, want)
	}
	if want := []uint64{1, 1, 1}; len(s.Buckets) != 3 || s.Buckets[0] != 1 || s.Buckets[1] != 1 || s.Buckets[2] != 1 {
		t.Fatalf("buckets = %v, want %v", s.Buckets, want)
	}
}

func TestWriteProm(t *testing.T) {
	r := NewRegistry()
	r.Counter("audit.sweeps").Add(3)
	r.Gauge("server.queue.depth").Set(-1)
	h := r.Histogram("server.latency.read", []int64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(500)

	var sb strings.Builder
	if err := r.SnapshotFull().WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"# TYPE audit_sweeps counter",
		"audit_sweeps 3",
		"# TYPE server_queue_depth gauge",
		"server_queue_depth -1",
		"# TYPE server_latency_read histogram",
		"server_latency_read_bucket{le=\"10\"} 1",
		"server_latency_read_bucket{le=\"100\"} 2",
		"server_latency_read_bucket{le=\"+Inf\"} 3",
		"server_latency_read_sum 555",
		"server_latency_read_count 3",
	} {
		if !strings.Contains(text, want+"\n") {
			t.Errorf("prom output missing %q:\n%s", want, text)
		}
	}

	// A compact snapshot (no buckets) must still emit sum/count but no
	// bucket series.
	sb.Reset()
	if err := r.Snapshot().WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "_bucket{") {
		t.Fatalf("compact snapshot emitted bucket series:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "server_latency_read_count 3") {
		t.Fatalf("compact snapshot missing count:\n%s", sb.String())
	}
}

func TestHistogramEmptyAndNegative(t *testing.T) {
	h := NewHistogram([]int64{10, 100})
	if s := h.SnapshotHistogram(); s.Count != 0 || s.P50 != 0 || s.Max != 0 {
		t.Fatalf("empty snapshot not zero: %+v", s)
	}
	h.Observe(-5) // clamps to 0
	if s := h.SnapshotHistogram(); s.Count != 1 || s.Sum != 0 {
		t.Fatalf("negative observation not clamped: %+v", s)
	}
}

func TestHistogramObserveAllocationFree(t *testing.T) {
	h := NewHistogram(LatencyBuckets())
	allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(12345)
	})
	if allocs != 0 {
		t.Fatalf("Observe allocates %.1f times per call, want 0", allocs)
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", nil)
	c := r.Counter("n")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(int64(i+w) * 1000)
				c.Inc()
				if i%100 == 0 {
					_ = r.Snapshot() // snapshots race harmlessly with updates
				}
			}
		}(w)
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counters["n"] != 8000 || s.Histograms["lat"].Count != 8000 {
		t.Fatalf("lost updates: %+v", s)
	}
}

func TestSnapshotEncodeDecode(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(3)
	r.Gauge("g").Set(-2)
	r.Histogram("h", nil).Observe(int64(time.Millisecond))
	snap := r.Snapshot()

	data, err := snap.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Counters["c"] != 3 || back.Gauges["g"] != -2 {
		t.Fatalf("round-trip mismatch: %+v", back)
	}
	if hb := back.Histograms["h"]; hb.Count != 1 || hb.Max != int64(time.Millisecond) {
		t.Fatalf("histogram round-trip mismatch: %+v", hb)
	}

	var sb strings.Builder
	if err := snap.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{"counter   c 3", "gauge     g -2", "histogram h count=1"} {
		if !strings.Contains(text, want) {
			t.Errorf("text output missing %q:\n%s", want, text)
		}
	}

	if _, err := ParseSnapshot([]byte("{not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}
