package core

import (
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/callproc"
	"repro/internal/memdb"
)

func defaultFramework(t *testing.T, mutate func(*Config)) *Framework {
	t.Helper()
	cfg := DefaultConfig(callproc.Schema(callproc.DefaultSchemaConfig()), callproc.CallLoop())
	if mutate != nil {
		mutate(&cfg)
	}
	f, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return f
}

func TestFrameworkLifecycle(t *testing.T) {
	f := defaultFramework(t, nil)
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	if err := f.Start(); err == nil {
		t.Fatal("double Start succeeded")
	}
	if !f.AuditProcess().Alive() {
		t.Fatal("audit process not alive after Start")
	}
	if err := f.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	f.Stop()
	if f.AuditProcess().Alive() {
		t.Fatal("audit process alive after Stop")
	}
	f.Stop() // idempotent
}

func TestFrameworkValidation(t *testing.T) {
	cfg := DefaultConfig(callproc.Schema(callproc.DefaultSchemaConfig()))
	cfg.AuditPeriod = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("zero audit period accepted")
	}
	cfg = DefaultConfig(memdb.Schema{})
	if _, err := New(cfg); err == nil {
		t.Fatal("empty schema accepted")
	}
	// Invalid loop caught at process construction → Start fails.
	cfg = DefaultConfig(callproc.Schema(callproc.DefaultSchemaConfig()),
		audit.Loop{Name: "bad", Steps: []audit.LoopStep{{Table: 99, Field: 0}, {Table: 0, Field: 0}}})
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Start(); err == nil {
		t.Fatal("Start with invalid loop succeeded")
	}
}

func TestFrameworkDetectsAndRepairsInjectedError(t *testing.T) {
	var findings []audit.Finding
	f := defaultFramework(t, nil)
	f.SetFindingObserver(func(fd audit.Finding) { findings = append(findings, fd) })
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the static configuration region mid-run.
	f.Env().Schedule(12*time.Second, func() {
		ext, err := f.DB().TableExtent(callproc.TblConfig)
		if err != nil {
			t.Errorf("TableExtent: %v", err)
			return
		}
		if err := f.DB().FlipBit(ext.Off+10, 3); err != nil {
			t.Errorf("FlipBit: %v", err)
		}
	})
	if err := f.Run(40 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(findings) == 0 {
		t.Fatal("framework missed the injected static error")
	}
	if findings[0].Class != audit.ClassStatic {
		t.Fatalf("finding class = %v", findings[0].Class)
	}
	if f.AuditProcess().Stats().ByClass[audit.ClassStatic] == 0 {
		t.Fatal("stats not updated")
	}
}

func TestFrameworkTerminatorWiring(t *testing.T) {
	f := defaultFramework(t, func(c *Config) { c.SemanticGrace = time.Second })
	var killed []int
	f.SetTerminator(func(pid int) { killed = append(killed, pid) })
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	// A client allocates a full chain but writes an inconsistent loop:
	// Resource points at the wrong process.
	c, err := f.DB().Connect()
	if err != nil {
		t.Fatal(err)
	}
	proc, _ := c.Alloc(callproc.TblProc, 1)
	conn, _ := c.Alloc(callproc.TblConn, 1)
	res, _ := c.Alloc(callproc.TblRes, 1)
	if err := c.WriteRec(callproc.TblProc, proc, []uint32{uint32(conn), 1}); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteRec(callproc.TblConn, conn, []uint32{uint32(res), 123456, 1}); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteRec(callproc.TblRes, res, []uint32{uint32(proc + 1), 1, 50}); err != nil {
		t.Fatal(err)
	}
	if err := f.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(killed) == 0 {
		t.Fatal("semantic recovery did not terminate the owning client")
	}
	if killed[0] != c.PID() {
		t.Fatalf("killed %v, want [%d]", killed, c.PID())
	}
}

func TestFrameworkManagerRestartsCrashedAudit(t *testing.T) {
	f := defaultFramework(t, nil)
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	f.Env().Schedule(7*time.Second, f.AuditProcess().Crash)
	if err := f.Run(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	if f.Manager().Restarts() != 1 {
		t.Fatalf("Restarts = %d, want 1", f.Manager().Restarts())
	}
	if !f.AuditProcess().Alive() {
		t.Fatal("audit process not restarted")
	}
}

func TestFrameworkSlicedTriggers(t *testing.T) {
	for _, mode := range []TriggerMode{SlicedRoundRobin, SlicedPrioritized} {
		f := defaultFramework(t, func(c *Config) {
			c.Trigger = mode
			c.AuditPeriod = 5 * time.Second
			c.Nature = []float64{1, 0, 0, 0}
		})
		if err := f.Start(); err != nil {
			t.Fatal(err)
		}
		// Plant a static error; the sliced audit must reach the config
		// table within a few slots.
		ext, err := f.DB().TableExtent(callproc.TblConfig)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.DB().FlipBit(ext.Off, 0); err != nil {
			t.Fatal(err)
		}
		if err := f.Run(120 * time.Second); err != nil {
			t.Fatal(err)
		}
		if f.AuditProcess().Stats().ByClass[audit.ClassStatic] == 0 {
			t.Fatalf("mode %v: sliced audit never detected the static error", mode)
		}
	}
}

func TestFrameworkEventTriggeredAudit(t *testing.T) {
	f := defaultFramework(t, func(c *Config) {
		c.EventTriggered = true
		c.AuditPeriod = time.Hour // effectively disable periodic audits
	})
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	c, err := f.DB().Connect()
	if err != nil {
		t.Fatal(err)
	}
	ri, err := c.Alloc(callproc.TblProc, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the record, then have the client write a *different* field
	// — the write notification triggers an immediate audit of the record.
	f.Env().Schedule(time.Second, func() {
		if err := f.DB().WriteFieldDirect(callproc.TblProc, ri, 1, 999); err != nil {
			t.Errorf("WriteFieldDirect: %v", err)
		}
		if err := c.WriteFld(callproc.TblProc, ri, 0, 2); err != nil {
			t.Errorf("WriteFld: %v", err)
		}
	})
	if err := f.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if f.AuditProcess().Stats().ByClass[audit.ClassRange] == 0 {
		t.Fatal("event-triggered audit missed the corruption")
	}
}

func TestFrameworkWithWorkloadCleanRun(t *testing.T) {
	f := defaultFramework(t, nil)
	wl, err := callproc.New(f.Env(), f.DB(), callproc.DefaultConfig(), callproc.Events{})
	if err != nil {
		t.Fatal(err)
	}
	f.SetTerminator(wl.TerminateThread)
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	if err := wl.Start(); err != nil {
		t.Fatal(err)
	}
	if err := f.Run(500 * time.Second); err != nil {
		t.Fatal(err)
	}
	if wl.Stats().Completed == 0 {
		t.Fatal("no calls completed")
	}
	if got := f.AuditProcess().Stats().Total(); got != 0 {
		t.Fatalf("clean run produced %d findings: %v", got, f.AuditProcess().Stats().ByClass)
	}
	if wl.Stats().Terminated != 0 {
		t.Fatal("audit terminated healthy calls")
	}
}

func TestFrameworkSelectiveMonitors(t *testing.T) {
	f := defaultFramework(t, func(c *Config) {
		c.Monitors = [][2]int{{callproc.TblConn, callproc.FldConnCallerID}}
		c.MonitorPeriod = 20 * time.Second
		c.AuditPeriod = time.Hour // isolate the selective element
		c.SemanticGrace = time.Second
	})
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	// Populate connections with a hot caller value plus one outlier whose
	// semantic chain is also broken, so escalation has something to find.
	c, err := f.DB().Connect()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		ri, err := c.Alloc(callproc.TblConn, 1)
		if err != nil {
			t.Fatal(err)
		}
		v := uint32(7_000_000)
		if i == 5 {
			v = 13 // statistical outlier
		}
		if err := c.WriteRec(callproc.TblConn, ri, []uint32{uint32(ri), v, 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Run(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	stats := f.AuditProcess().Stats()
	if stats.ByClass[audit.ClassSuspect] == 0 {
		t.Fatalf("selective monitor flagged nothing: %v", stats.ByClass)
	}
	// A bad monitor spec fails process construction via the manager.
	bad := defaultFramework(t, func(c *Config) {
		c.Monitors = [][2]int{{99, 0}}
	})
	if err := bad.Start(); err == nil {
		t.Fatal("Start with invalid monitor succeeded")
	}
}
