package core_test

import (
	"fmt"
	"time"

	"repro/internal/audit"
	"repro/internal/callproc"
	"repro/internal/core"
)

// Example builds the integrated framework over the controller schema,
// corrupts the static configuration, and lets the periodic audit detect
// and repair the damage.
func Example() {
	schema := callproc.Schema(callproc.DefaultSchemaConfig())
	fw, err := core.New(core.DefaultConfig(schema, callproc.CallLoop()))
	if err != nil {
		fmt.Println("build:", err)
		return
	}
	fw.SetFindingObserver(func(f audit.Finding) {
		fmt.Printf("finding: %v repaired by %v\n", f.Class, f.Action)
	})
	if err := fw.Start(); err != nil {
		fmt.Println("start:", err)
		return
	}
	defer fw.Stop()

	ext, _ := fw.DB().TableExtent(callproc.TblConfig)
	_ = fw.DB().FlipBit(ext.Off+8, 1) // corrupt a configuration byte

	_ = fw.Run(15 * time.Second) // one 10 s audit sweep passes
	// Output:
	// finding: static repaired by reload
}
