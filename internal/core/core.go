// Package core assembles the paper's integrated dependability framework
// (Figure 1): the in-memory database with its audit-notification hook, the
// audit process with its elements (heartbeat, progress indicator, periodic
// and event-triggered audits over the static/structural/range/semantic
// checks, optional prioritized triggering and selective monitoring), and
// the manager that supervises the audit process by heartbeat — all running
// on one deterministic simulation environment.
//
// Client-side protection (PECOS) lives in internal/pecos and internal/vm;
// the error-injection campaigns that exercise both halves together are in
// internal/inject and internal/experiment.
package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/audit"
	"repro/internal/ipc"
	"repro/internal/manager"
	"repro/internal/memdb"
	"repro/internal/sim"
)

// TriggerMode selects how the periodic audit element covers the database.
type TriggerMode int

// Trigger modes.
const (
	// FullSweepPeriodic audits every table each period (Table 2 setup).
	FullSweepPeriodic TriggerMode = iota + 1
	// SlicedRoundRobin audits one table per period in fixed order — the
	// unprioritized baseline of §5.3.
	SlicedRoundRobin
	// SlicedPrioritized audits one table per period chosen by runtime
	// statistics — §4.4.1 prioritized audit triggering.
	SlicedPrioritized
)

// Config parameterizes a Framework.
type Config struct {
	// Seed drives every random stream in the environment.
	Seed int64
	// Schema is the controller database definition.
	Schema memdb.Schema
	// Loops are the semantic referential-integrity loops to audit.
	Loops []audit.Loop
	// AuditPeriod is the periodic trigger interval (Table 2: 10 s; the
	// §5.3 slice experiments use one table every 5 s).
	AuditPeriod time.Duration
	// Trigger selects the coverage mode.
	Trigger TriggerMode
	// EventTriggered additionally audits each record right after it is
	// written (§4.3).
	EventTriggered bool
	// Nature weights tables for prioritized triggering (importance by
	// the nature of the object); may be nil.
	Nature []float64
	// SemanticGrace is the orphan-reclamation grace age.
	SemanticGrace time.Duration
	// Monitors lists (table, field) attributes to watch with §4.4.2
	// selective monitoring; suspects escalate to an immediate semantic
	// audit of the implicated table.
	Monitors [][2]int
	// MonitorPeriod is the selective monitors' scan period (defaults to
	// 4 × AuditPeriod).
	MonitorPeriod time.Duration
	// QueueCapacity bounds the API→audit IPC queue.
	QueueCapacity int
	// HeartbeatPeriod/HeartbeatTimeout configure the manager.
	HeartbeatPeriod  time.Duration
	HeartbeatTimeout time.Duration
	// DisableFreeRecordCheck turns off the robust-data-structure rule
	// over free records (used by ablations).
	DisableFreeRecordCheck bool
}

// DefaultConfig returns the paper's Table 2 configuration over the given
// schema and loops.
func DefaultConfig(schema memdb.Schema, loops ...audit.Loop) Config {
	return Config{
		Seed:             1,
		Schema:           schema,
		Loops:            loops,
		AuditPeriod:      10 * time.Second,
		Trigger:          FullSweepPeriodic,
		EventTriggered:   false,
		SemanticGrace:    2 * time.Second,
		QueueCapacity:    1 << 16,
		HeartbeatPeriod:  5 * time.Second,
		HeartbeatTimeout: 2 * time.Second,
	}
}

// Framework is the assembled dependability environment.
type Framework struct {
	cfg     Config
	env     *sim.Env
	db      *memdb.DB
	queue   *ipc.Queue
	manager *manager.Manager
	sched   audit.Scheduler

	terminate func(pid int)
	onFinding func(audit.Finding)
	started   bool
}

// New builds (but does not start) the framework.
func New(cfg Config) (*Framework, error) {
	if cfg.AuditPeriod <= 0 {
		return nil, errors.New("core: AuditPeriod must be positive")
	}
	if cfg.QueueCapacity <= 0 {
		cfg.QueueCapacity = 1 << 16
	}
	env := sim.NewEnv(cfg.Seed)
	db, err := memdb.New(cfg.Schema, memdb.WithClock(env.Now))
	if err != nil {
		return nil, fmt.Errorf("core: build database: %w", err)
	}
	queue, err := ipc.NewQueue(cfg.QueueCapacity)
	if err != nil {
		return nil, fmt.Errorf("core: build queue: %w", err)
	}
	db.EnableAudit(queue)

	f := &Framework{cfg: cfg, env: env, db: db, queue: queue}

	switch cfg.Trigger {
	case SlicedRoundRobin:
		f.sched = audit.NewRoundRobin(len(cfg.Schema.Tables))
	case SlicedPrioritized:
		p := audit.NewPrioritized(db)
		copy(p.Nature, cfg.Nature)
		f.sched = p
	}

	mgr := manager.New(env, queue, f.buildAuditProcess,
		manager.WithHeartbeat(orDefault(cfg.HeartbeatPeriod, 5*time.Second),
			orDefault(cfg.HeartbeatTimeout, 2*time.Second)))
	f.manager = mgr
	return f, nil
}

func orDefault(d, def time.Duration) time.Duration {
	if d <= 0 {
		return def
	}
	return d
}

// buildAuditProcess is the manager's factory: a fresh audit process with
// the full element set. Called at start and after every restart.
func (f *Framework) buildAuditProcess(queue *ipc.Queue) (*audit.Process, error) {
	rec := audit.Recovery{
		TerminateClient: func(pid int) {
			if f.terminate != nil {
				f.terminate(pid)
			}
		},
		OnFinding: func(fd audit.Finding) {
			if f.onFinding != nil {
				f.onFinding(fd)
			}
		},
	}
	sem, err := audit.NewSemanticCheck(f.db, rec, f.env.Now, f.cfg.Loops...)
	if err != nil {
		return nil, err
	}
	if f.cfg.SemanticGrace > 0 {
		sem.GraceAge = f.cfg.SemanticGrace
	}
	rangeCheck := audit.NewRangeCheck(f.db, rec)
	if f.cfg.DisableFreeRecordCheck {
		rangeCheck.CheckFreeRecords = false
	}
	checks := []audit.Checker{
		audit.NewStaticCheck(f.db, rec),
		audit.NewStructuralCheck(f.db, rec),
		rangeCheck,
		sem,
	}
	mode := audit.FullSweep
	if f.cfg.Trigger == SlicedRoundRobin || f.cfg.Trigger == SlicedPrioritized {
		mode = audit.TableSlice
	}
	proc := audit.NewProcess(f.env, f.db, queue)
	elements := []audit.Element{
		audit.NewHeartbeatElement(),
		audit.NewProgressElement(rec),
		audit.NewPeriodicElement(f.cfg.AuditPeriod, mode, f.sched, checks...),
	}
	if f.cfg.EventTriggered {
		elements = append(elements, audit.NewEventElement(rangeCheck))
	}
	if len(f.cfg.Monitors) > 0 {
		monitors := make([]*audit.SelectiveMonitor, 0, len(f.cfg.Monitors))
		for _, m := range f.cfg.Monitors {
			mon, err := audit.NewSelectiveMonitor(f.db, m[0], m[1])
			if err != nil {
				return nil, err
			}
			monitors = append(monitors, mon)
		}
		period := f.cfg.MonitorPeriod
		if period <= 0 {
			period = 4 * f.cfg.AuditPeriod
		}
		escalate := func(suspects []audit.Finding) {
			// Suspects are "further checked by other means" (§4.4.2):
			// run the semantic audit over the implicated tables now.
			seen := make(map[int]bool)
			for _, s := range suspects {
				if s.Table >= 0 && !seen[s.Table] {
					seen[s.Table] = true
					proc.Stats().Add(sem.CheckTable(s.Table))
				}
			}
		}
		elements = append(elements, audit.NewSelectiveElement(period, escalate, monitors...))
	}
	for _, el := range elements {
		if err := proc.Register(el); err != nil {
			return nil, err
		}
	}
	return proc, nil
}

// Env returns the simulation environment.
func (f *Framework) Env() *sim.Env { return f.env }

// DB returns the protected database.
func (f *Framework) DB() *memdb.DB { return f.db }

// Queue returns the API→audit IPC queue.
func (f *Framework) Queue() *ipc.Queue { return f.queue }

// Manager returns the supervising manager.
func (f *Framework) Manager() *manager.Manager { return f.manager }

// AuditProcess returns the currently running audit process.
func (f *Framework) AuditProcess() *audit.Process { return f.manager.Process() }

// SetTerminator wires the recovery action that kills a client thread by
// PID (typically callproc.Workload.TerminateThread). Settable before or
// after Start.
func (f *Framework) SetTerminator(fn func(pid int)) { f.terminate = fn }

// SetFindingObserver wires an observer for every audit finding.
func (f *Framework) SetFindingObserver(fn func(audit.Finding)) { f.onFinding = fn }

// Start launches the manager (which starts the audit process).
func (f *Framework) Start() error {
	if f.started {
		return errors.New("core: already started")
	}
	if err := f.manager.Start(); err != nil {
		return err
	}
	f.started = true
	return nil
}

// Stop halts supervision and the audit process.
func (f *Framework) Stop() {
	if !f.started {
		return
	}
	f.manager.Stop()
	f.started = false
}

// Run advances the environment by the given horizon.
func (f *Framework) Run(horizon time.Duration) error {
	return f.env.Run(horizon)
}
