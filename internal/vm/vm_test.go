package vm

import (
	"testing"

	"repro/internal/isa"
)

func mustAssemble(t *testing.T, src string) []uint32 {
	t.Helper()
	text, err := isa.Assemble(src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return text
}

func run1(t *testing.T, src string) *Thread {
	t.Helper()
	m, err := New(mustAssemble(t, src), 1, DefaultConfig(), nil)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	m.Run(100000)
	return m.Thread(0)
}

func TestArithmetic(t *testing.T) {
	th := run1(t, `
		movi r1, 6
		movi r2, 7
		mul  r3, r1, r2
		add  r4, r3, r1
		sub  r5, r4, r2
		movi r6, 2
		div  r7, r5, r6
		halt
	`)
	if th.State != ThreadHalted {
		t.Fatalf("state = %v, trap %v", th.State, th.Trap)
	}
	if th.Regs[3] != 42 || th.Regs[4] != 48 || th.Regs[5] != 41 || th.Regs[7] != 20 {
		t.Fatalf("regs = %v", th.Regs)
	}
}

func TestBitwiseAndImmediates(t *testing.T) {
	th := run1(t, `
		movi r1, 0xF0
		movi r2, 0x0F
		or   r3, r1, r2
		and  r4, r1, r2
		xor  r5, r1, r3
		addi r6, r1, -16
		mov  r7, r6
		halt
	`)
	if th.Regs[3] != 0xFF || th.Regs[4] != 0 || th.Regs[5] != 0x0F || th.Regs[6] != 0xE0 || th.Regs[7] != 0xE0 {
		t.Fatalf("regs = %v", th.Regs[:8])
	}
}

func TestBranchesAndLoop(t *testing.T) {
	th := run1(t, `
		movi r1, 0
		movi r2, 0
	loop:
		addi r1, r1, 1
		add  r2, r2, r1
		cmpi r1, 10
		blt  loop
		halt
	`)
	if th.State != ThreadHalted {
		t.Fatalf("state = %v", th.State)
	}
	if th.Regs[1] != 10 || th.Regs[2] != 55 {
		t.Fatalf("r1=%d r2=%d, want 10, 55", th.Regs[1], th.Regs[2])
	}
}

func TestConditionalBranchVariants(t *testing.T) {
	th := run1(t, `
		movi r1, 5
		movi r2, 5
		cmp  r1, r2
		beq  eq
		movi r10, 1
	eq:
		cmpi r1, 9
		bge  done      ; not taken: 5 < 9
		movi r11, 1
		cmpi r1, 3
		bne  done      ; taken: 5 != 3
		movi r12, 1
	done:
		halt
	`)
	if th.Regs[10] != 0 {
		t.Fatal("beq not taken when equal")
	}
	if th.Regs[11] != 1 {
		t.Fatal("bge taken when less")
	}
	if th.Regs[12] != 0 {
		t.Fatal("bne not taken when unequal")
	}
}

func TestCallRetAndIndirect(t *testing.T) {
	th := run1(t, `
		call fn
		movi r2, 10
		movi r3, fn2
		calr r3
		halt
	fn:
		movi r1, 1
		ret
	fn2:
		movi r4, 4
		ret
	`)
	if th.State != ThreadHalted {
		t.Fatalf("state = %v trap=%v pc=%d", th.State, th.Trap, th.TrapPC)
	}
	if th.Regs[1] != 1 || th.Regs[2] != 10 || th.Regs[4] != 4 {
		t.Fatalf("regs = %v", th.Regs[:5])
	}
	if len(th.Stack) != 0 {
		t.Fatalf("stack not empty: %v", th.Stack)
	}
}

func TestJrIndirectJump(t *testing.T) {
	th := run1(t, `
		movi r1, target
		jr   r1
		movi r9, 1   ; skipped
	target:
		halt
	`)
	if th.State != ThreadHalted || th.Regs[9] != 0 {
		t.Fatalf("state=%v r9=%d", th.State, th.Regs[9])
	}
}

func TestLoadStore(t *testing.T) {
	th := run1(t, `
		movi r1, 10     ; base address
		movi r2, 777
		st   [r1+5], r2
		ld   r3, [r1+5]
		halt
	`)
	if th.Regs[3] != 777 {
		t.Fatalf("r3 = %d", th.Regs[3])
	}
	if th.Mem[15] != 777 {
		t.Fatalf("mem[15] = %d", th.Mem[15])
	}
}

func TestTraps(t *testing.T) {
	tests := []struct {
		name string
		src  string
		trap Trap
	}{
		{"div by zero", "movi r1, 5\nmovi r2, 0\ndiv r3, r1, r2\nhalt", TrapDivZero},
		{"mem fault load", "movi r1, 60000\nld r2, [r1]\nhalt", TrapMemFault},
		{"mem fault store", "movi r1, 60000\nst [r1], r2\nhalt", TrapMemFault},
		{"stack underflow", "ret", TrapStackFault},
		{"pc off end", "movi r1, 1", TrapMemFault}, // falls off text
		{"jump off end", "jmp 9999", TrapMemFault},
		{"syscall without handler", "sys 1", TrapIllegal},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			th := run1(t, tt.src)
			if th.State != ThreadCrashed {
				t.Fatalf("state = %v, want crashed", th.State)
			}
			if th.Trap != tt.trap {
				t.Fatalf("trap = %v, want %v", th.Trap, tt.trap)
			}
		})
	}
}

func TestIllegalInstructionTrap(t *testing.T) {
	m, err := New([]uint32{0xFE000000}, 1, DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(10)
	th := m.Thread(0)
	if th.State != ThreadCrashed || th.Trap != TrapIllegal {
		t.Fatalf("state=%v trap=%v", th.State, th.Trap)
	}
	if !m.Crashed() {
		t.Fatal("process not crashed")
	}
}

func TestStackOverflow(t *testing.T) {
	th := run1(t, `
	rec:
		call rec
		halt
	`)
	if th.Trap != TrapStackFault {
		t.Fatalf("trap = %v, want stack fault", th.Trap)
	}
}

func TestSyscallBridge(t *testing.T) {
	var calls []uint32
	sys := func(th *Thread, num uint32) Trap {
		calls = append(calls, num)
		th.Regs[0] = num * 2
		return TrapNone
	}
	m, err := New(mustAssemble(t, "sys 21\nmov r1, r0\nsys 4\nhalt"), 1, DefaultConfig(), sys)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(100)
	th := m.Thread(0)
	if th.State != ThreadHalted {
		t.Fatalf("state = %v", th.State)
	}
	if len(calls) != 2 || calls[0] != 21 || calls[1] != 4 {
		t.Fatalf("calls = %v", calls)
	}
	if th.Regs[1] != 42 {
		t.Fatalf("r1 = %d", th.Regs[1])
	}
}

func TestSyscallTrapFaultsThread(t *testing.T) {
	sys := func(th *Thread, num uint32) Trap { return TrapMemFault }
	m, err := New(mustAssemble(t, "sys 1\nhalt"), 1, DefaultConfig(), sys)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(10)
	if m.Thread(0).Trap != TrapMemFault {
		t.Fatalf("trap = %v", m.Thread(0).Trap)
	}
}

func TestMultiThreadInterleaving(t *testing.T) {
	// Each thread sums its own counter privately; all must halt with the
	// same result, proving register/memory isolation.
	src := `
		movi r1, 0
		movi r2, 0
	loop:
		addi r1, r1, 1
		add  r2, r2, r1
		st   [r0+1], r2
		cmpi r1, 100
		blt  loop
		halt
	`
	m, err := New(mustAssemble(t, src), 4, DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(1 << 20)
	for _, th := range m.Threads() {
		if th.State != ThreadHalted {
			t.Fatalf("thread %d state = %v", th.ID, th.State)
		}
		if th.Regs[2] != 5050 || th.Mem[1] != 5050 {
			t.Fatalf("thread %d r2=%d mem=%d", th.ID, th.Regs[2], th.Mem[1])
		}
	}
	if !m.Done() || m.Runnable() != 0 {
		t.Fatal("VM not done after all halts")
	}
}

func TestRunBudgetHangSignal(t *testing.T) {
	m, err := New(mustAssemble(t, "x: jmp x"), 1, DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	steps := m.Run(1000)
	if steps != 1000 {
		t.Fatalf("steps = %d, want budget 1000", steps)
	}
	if m.Runnable() != 1 {
		t.Fatal("spinning thread not runnable")
	}
}

func TestOnTrapKillThreadContinuesOthers(t *testing.T) {
	src := `
		cmpi r9, 1
		beq  bad
		movi r1, 1
		halt
	bad:
		movi r2, 0
		div  r3, r1, r2
		halt
	`
	m, err := New(mustAssemble(t, src), 2, DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	m.Thread(1).Regs[9] = 1 // thread 1 takes the faulting path
	m.OnTrap = func(th *Thread, trap Trap) TrapAction {
		if trap == TrapDivZero {
			return ActionKillThread
		}
		return ActionCrashProcess
	}
	m.Run(1000)
	if m.Crashed() {
		t.Fatal("process crashed despite kill-thread handler")
	}
	if m.Thread(0).State != ThreadHalted {
		t.Fatalf("thread 0 = %v", m.Thread(0).State)
	}
	if m.Thread(1).State != ThreadKilled || m.Thread(1).Trap != TrapDivZero {
		t.Fatalf("thread 1 = %v/%v", m.Thread(1).State, m.Thread(1).Trap)
	}
}

func TestOnFetchSubstitution(t *testing.T) {
	// Substitute the movi at pc=0 with movi r1, 99.
	m, err := New(mustAssemble(t, "movi r1, 5\nhalt"), 1, DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	m.OnFetch = func(th *Thread, pc uint32, w uint32) uint32 {
		if pc == 0 {
			return isa.Encode(isa.Instr{Op: isa.OpMovi, Rd: 1, Imm16: 99})
		}
		return w
	}
	m.Run(10)
	if got := m.Thread(0).Regs[1]; got != 99 {
		t.Fatalf("r1 = %d, want substituted 99", got)
	}
}

// --- Assertion-block semantics ------------------------------------------

// buildAsserted builds: assert(2){T1,T2}; beq T1; with flags preset.
func buildAsserted(taken uint32, fall uint32) []uint32 {
	return []uint32{
		isa.Encode(isa.Instr{Op: isa.OpAssert, Imm16: 2}),
		taken,
		fall,
		isa.Encode(isa.Instr{Op: isa.OpBeq, Imm16: taken}),
		isa.Encode(isa.Instr{Op: isa.OpHalt}), // fall-through (addr 4)
		isa.Encode(isa.Instr{Op: isa.OpHalt}), // taken target (addr 5)
	}
}

func TestAssertPassesValidTransfer(t *testing.T) {
	text := buildAsserted(5, 4)
	m, err := New(text, 1, DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	m.Thread(0).FlagZ = true // branch taken → target 5: valid
	m.Run(10)
	th := m.Thread(0)
	if th.State != ThreadHalted {
		t.Fatalf("state = %v trap=%v", th.State, th.Trap)
	}
	if th.TrapPC != 5 {
		t.Fatalf("halted at %d, want taken target 5", th.TrapPC)
	}
}

func TestAssertPassesFallThrough(t *testing.T) {
	text := buildAsserted(5, 4)
	m, err := New(text, 1, DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	m.Thread(0).FlagZ = false // fall through → 4: valid
	m.Run(10)
	if m.Thread(0).TrapPC != 4 {
		t.Fatalf("halted at %d, want fall-through 4", m.Thread(0).TrapPC)
	}
}

func TestAssertTrapsOnCorruptedTarget(t *testing.T) {
	text := buildAsserted(5, 4)
	// Corrupt the branch target: beq now points at 2 (inside the
	// assertion block) — an illegal transfer.
	text[3] = isa.Encode(isa.Instr{Op: isa.OpBeq, Imm16: 2})
	m, err := New(text, 1, DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	m.Thread(0).FlagZ = true
	m.Run(10)
	th := m.Thread(0)
	if th.State != ThreadCrashed || th.Trap != TrapDivZero {
		t.Fatalf("state=%v trap=%v", th.State, th.Trap)
	}
	if !th.InAssert {
		t.Fatal("trap not attributed to the assertion block")
	}
	if th.TrapPC != 0 {
		t.Fatalf("trap PC = %d, want assertion header 0", th.TrapPC)
	}
	// Preemptive: the illegal transfer never executed, so the PC of the
	// *thread* never reached address 2.
}

func TestAssertTrapsWhenCFIBecomesNonCFI(t *testing.T) {
	text := buildAsserted(5, 4)
	text[3] = isa.Encode(isa.Instr{Op: isa.OpAdd, Rd: 1, Rs1: 1, Rs2: 1})
	m, err := New(text, 1, DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(10)
	th := m.Thread(0)
	if th.Trap != TrapDivZero || !th.InAssert {
		t.Fatalf("trap=%v inAssert=%v", th.Trap, th.InAssert)
	}
}

func TestAssertIndirectJumpRuntimeTarget(t *testing.T) {
	// assert(1){4}; jr r1; halt@3(wrong); halt@4(valid)
	text := []uint32{
		isa.Encode(isa.Instr{Op: isa.OpAssert, Imm16: 1}),
		4,
		isa.Encode(isa.Instr{Op: isa.OpJr, Rs1: 1}),
		isa.Encode(isa.Instr{Op: isa.OpHalt}),
		isa.Encode(isa.Instr{Op: isa.OpHalt}),
	}
	m, err := New(text, 1, DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	m.Thread(0).Regs[1] = 4
	m.Run(10)
	if m.Thread(0).State != ThreadHalted || m.Thread(0).TrapPC != 4 {
		t.Fatalf("state=%v pc=%d", m.Thread(0).State, m.Thread(0).TrapPC)
	}

	// Runtime-computed register now holds an invalid target.
	m2, err := New(text, 1, DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	m2.Thread(0).Regs[1] = 3
	m2.Run(10)
	if m2.Thread(0).Trap != TrapDivZero || !m2.Thread(0).InAssert {
		t.Fatalf("trap=%v", m2.Thread(0).Trap)
	}
}

func TestAssertReturnUsesStackTop(t *testing.T) {
	// assert(1){7}; ret — valid only when returning to 7.
	text := []uint32{
		isa.Encode(isa.Instr{Op: isa.OpAssert, Imm16: 1}),
		7,
		isa.Encode(isa.Instr{Op: isa.OpRet}),
		0, 0, 0, 0,
		isa.Encode(isa.Instr{Op: isa.OpHalt}), // addr 7
	}
	m, err := New(text, 1, DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	m.Thread(0).Stack = []uint32{7}
	m.Run(10)
	if m.Thread(0).State != ThreadHalted {
		t.Fatalf("state=%v trap=%v", m.Thread(0).State, m.Thread(0).Trap)
	}

	// Corrupted return address.
	m2, err := New(text, 1, DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	m2.Thread(0).Stack = []uint32{3}
	m2.Run(10)
	if m2.Thread(0).Trap != TrapDivZero {
		t.Fatalf("trap=%v", m2.Thread(0).Trap)
	}

	// Empty stack: target indeterminable → assertion trap.
	m3, err := New(text, 1, DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	m3.Run(10)
	if m3.Thread(0).Trap != TrapDivZero || !m3.Thread(0).InAssert {
		t.Fatalf("trap=%v", m3.Thread(0).Trap)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, 1, DefaultConfig(), nil); err == nil {
		t.Fatal("empty text accepted")
	}
	if _, err := New([]uint32{1}, 0, DefaultConfig(), nil); err == nil {
		t.Fatal("zero threads accepted")
	}
	if _, err := New(make([]uint32, 1<<17), 1, DefaultConfig(), nil); err == nil {
		t.Fatal("oversized text accepted")
	}
	m, err := New([]uint32{isa.Encode(isa.Instr{Op: isa.OpHalt})}, 1, Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Thread(0).Mem) == 0 {
		t.Fatal("zero config did not default")
	}
	if m.Thread(99) != nil || m.Thread(-1) != nil {
		t.Fatal("out-of-range Thread lookup nonzero")
	}
}

func TestStrings(t *testing.T) {
	if TrapDivZero.String() != "divide-by-zero" || Trap(99).String() != "unknown" {
		t.Fatal("Trap.String mismatch")
	}
	if ThreadKilled.String() != "killed" || ThreadState(0).String() != "unknown" {
		t.Fatal("ThreadState.String mismatch")
	}
}

func TestTextAccessorAndStrings(t *testing.T) {
	text := mustAssemble(t, "halt")
	m, err := New(text, 1, DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Text()) != 1 || m.Text()[0] != text[0] {
		t.Fatal("Text() does not expose the live segment")
	}
	for trap, want := range map[Trap]string{
		TrapNone: "none", TrapHalt: "halt", TrapIllegal: "illegal-instruction",
		TrapMemFault: "memory-fault", TrapStackFault: "stack-fault",
	} {
		if trap.String() != want {
			t.Fatalf("Trap(%d).String() = %q, want %q", trap, trap.String(), want)
		}
	}
	for st, want := range map[ThreadState]string{
		ThreadRunning: "running", ThreadHalted: "halted",
	} {
		if st.String() != want {
			t.Fatalf("ThreadState(%d).String() = %q, want %q", st, st.String(), want)
		}
	}
}
