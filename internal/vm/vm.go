// Package vm interprets programs in the internal/isa instruction set.
//
// The VM is the substrate that makes PECOS reproducible in Go: the program
// counter, the instruction words, and the control-transfer targets are all
// explicit data, so preemptive assertion blocks can validate an impending
// transfer before it retires, and the error injector can corrupt the
// instruction stream exactly as the paper's NFTAPE error models describe.
//
// Multi-threading follows the paper's client: every thread shares the text
// segment (so one injected error can activate in several threads) but owns
// its registers, flags, data memory, and call stack.
package vm

import (
	"errors"
	"fmt"

	"repro/internal/isa"
)

// Trap enumerates execution faults, mirroring the signals of the paper's
// Solaris target.
type Trap int

// Traps.
const (
	TrapNone Trap = iota
	// TrapHalt is normal termination.
	TrapHalt
	// TrapIllegal is an undecodable or malformed instruction (SIGILL).
	TrapIllegal
	// TrapMemFault is an out-of-range data or text access (SIGSEGV/SIGBUS).
	TrapMemFault
	// TrapDivZero is an integer division by zero (SIGFPE) — also the trap
	// a PECOS assertion block raises on an impending illegal transfer.
	TrapDivZero
	// TrapStackFault is call-stack underflow/overflow.
	TrapStackFault
)

// String returns the trap name.
func (t Trap) String() string {
	switch t {
	case TrapNone:
		return "none"
	case TrapHalt:
		return "halt"
	case TrapIllegal:
		return "illegal-instruction"
	case TrapMemFault:
		return "memory-fault"
	case TrapDivZero:
		return "divide-by-zero"
	case TrapStackFault:
		return "stack-fault"
	default:
		return "unknown"
	}
}

// ThreadState is a thread's lifecycle state.
type ThreadState int

// Thread states.
const (
	ThreadRunning ThreadState = iota + 1
	// ThreadHalted: reached halt normally.
	ThreadHalted
	// ThreadKilled: terminated gracefully by a recovery handler (the
	// PECOS signal handler's action).
	ThreadKilled
	// ThreadCrashed: took an unhandled trap (system detection).
	ThreadCrashed
)

// String returns the state name.
func (s ThreadState) String() string {
	switch s {
	case ThreadRunning:
		return "running"
	case ThreadHalted:
		return "halted"
	case ThreadKilled:
		return "killed"
	case ThreadCrashed:
		return "crashed"
	default:
		return "unknown"
	}
}

// TrapAction is a trap handler's decision.
type TrapAction int

// Trap actions.
const (
	// ActionCrashProcess: unhandled — the whole client process crashes
	// (the paper's "system detection" outcome).
	ActionCrashProcess TrapAction = iota + 1
	// ActionKillThread: terminate only the faulting thread and continue
	// — the PECOS handler's graceful recovery.
	ActionKillThread
)

// Thread is one execution context.
type Thread struct {
	ID    int
	Regs  [isa.NumRegs]uint32
	PC    uint32
	FlagZ bool
	FlagN bool
	Mem   []uint32 // private data memory
	Stack []uint32 // return-address stack

	State  ThreadState
	Trap   Trap
	TrapPC uint32
	// InAssert marks that the trap was raised by a PECOS assertion block
	// (the PECOS signal handler checks exactly this: "examines the PC
	// from which the signal was raised, and if it corresponds to a PECOS
	// Assertion Block, concludes that a control flow error raised it").
	InAssert bool
	// TrapTarget is the runtime CFI target (Xout) the assertion rejected —
	// the other half of the offending signature pair. Meaningful only when
	// InAssert is set and the trap came from a target mismatch; zero when
	// the assertion block itself was damaged or the target indeterminable.
	TrapTarget uint32
	Steps      uint64
}

// Config sizes the VM.
type Config struct {
	// MemWords is each thread's private data memory size.
	MemWords int
	// MaxStack bounds the call stack.
	MaxStack int
}

// DefaultConfig returns reasonable sizes for the client programs.
func DefaultConfig() Config {
	return Config{MemWords: 256, MaxStack: 64}
}

// Syscall bridges sys instructions to the environment (database API,
// golden-copy bookkeeping). It may read and write thread registers; a
// non-TrapNone return faults the thread.
type Syscall func(t *Thread, num uint32) Trap

// VM executes a shared text segment across threads.
type VM struct {
	text    []uint32
	threads []*Thread
	cfg     Config
	sys     Syscall
	crashed bool

	// OnFetch, when set, may substitute the fetched instruction word —
	// the error injector's hook (data-line models corrupt the word;
	// the address-line model substitutes a different instruction).
	OnFetch func(t *Thread, pc uint32, word uint32) uint32
	// OnTrap decides what a trap does. Nil means every trap crashes the
	// process. The PECOS runtime installs a handler here.
	OnTrap func(t *Thread, trap Trap) TrapAction
}

// New builds a VM over text with n threads.
func New(text []uint32, n int, cfg Config, sys Syscall) (*VM, error) {
	if len(text) == 0 {
		return nil, errors.New("vm: empty text segment")
	}
	if len(text) > 0xFFFF {
		return nil, fmt.Errorf("vm: text segment %d words exceeds 16-bit address space", len(text))
	}
	if n <= 0 {
		return nil, errors.New("vm: thread count must be positive")
	}
	if cfg.MemWords <= 0 {
		cfg.MemWords = DefaultConfig().MemWords
	}
	if cfg.MaxStack <= 0 {
		cfg.MaxStack = DefaultConfig().MaxStack
	}
	m := &VM{text: text, cfg: cfg, sys: sys}
	for i := 0; i < n; i++ {
		m.threads = append(m.threads, &Thread{
			ID:    i,
			Mem:   make([]uint32, cfg.MemWords),
			State: ThreadRunning,
		})
	}
	return m, nil
}

// Text returns the live text segment (the injection target).
func (m *VM) Text() []uint32 { return m.text }

// Threads returns the thread table.
func (m *VM) Threads() []*Thread { return m.threads }

// Thread returns thread i, or nil.
func (m *VM) Thread(i int) *Thread {
	if i < 0 || i >= len(m.threads) {
		return nil
	}
	return m.threads[i]
}

// Crashed reports whether an unhandled trap crashed the whole process.
func (m *VM) Crashed() bool { return m.crashed }

// Runnable reports the number of threads still running.
func (m *VM) Runnable() int {
	n := 0
	for _, t := range m.threads {
		if t.State == ThreadRunning {
			n++
		}
	}
	return n
}

// Done reports whether no thread can make further progress.
func (m *VM) Done() bool { return m.crashed || m.Runnable() == 0 }

// Run interleaves threads round-robin for at most maxSteps total
// instructions, returning the steps actually executed. It stops early when
// the process crashes or every thread reaches a terminal state. A return
// value equal to maxSteps with Runnable()>0 is the caller's hang signal.
func (m *VM) Run(maxSteps uint64) uint64 {
	var steps uint64
	for steps < maxSteps && !m.Done() {
		for _, t := range m.threads {
			if steps >= maxSteps || m.crashed {
				break
			}
			if t.State != ThreadRunning {
				continue
			}
			m.Step(t)
			steps++
		}
	}
	return steps
}

// Step executes one instruction on t.
func (m *VM) Step(t *Thread) {
	if t.State != ThreadRunning || m.crashed {
		return
	}
	t.Steps++
	pc := t.PC
	word, ok := m.fetch(t, pc)
	if !ok {
		m.fault(t, TrapMemFault, pc, false)
		return
	}
	in, err := isa.Decode(word)
	if err != nil {
		m.fault(t, TrapIllegal, pc, false)
		return
	}
	switch in.Op {
	case isa.OpNop:
		t.PC = pc + 1
	case isa.OpHalt:
		t.State = ThreadHalted
		t.Trap = TrapHalt
		t.TrapPC = pc
	case isa.OpMovi:
		t.Regs[in.Rd] = in.Imm16
		t.PC = pc + 1
	case isa.OpMov:
		t.Regs[in.Rd] = t.Regs[in.Rs1]
		t.PC = pc + 1
	case isa.OpAdd:
		t.Regs[in.Rd] = t.Regs[in.Rs1] + t.Regs[in.Rs2]
		t.PC = pc + 1
	case isa.OpSub:
		t.Regs[in.Rd] = t.Regs[in.Rs1] - t.Regs[in.Rs2]
		t.PC = pc + 1
	case isa.OpMul:
		t.Regs[in.Rd] = t.Regs[in.Rs1] * t.Regs[in.Rs2]
		t.PC = pc + 1
	case isa.OpDiv:
		if t.Regs[in.Rs2] == 0 {
			m.fault(t, TrapDivZero, pc, false)
			return
		}
		t.Regs[in.Rd] = t.Regs[in.Rs1] / t.Regs[in.Rs2]
		t.PC = pc + 1
	case isa.OpAnd:
		t.Regs[in.Rd] = t.Regs[in.Rs1] & t.Regs[in.Rs2]
		t.PC = pc + 1
	case isa.OpOr:
		t.Regs[in.Rd] = t.Regs[in.Rs1] | t.Regs[in.Rs2]
		t.PC = pc + 1
	case isa.OpXor:
		t.Regs[in.Rd] = t.Regs[in.Rs1] ^ t.Regs[in.Rs2]
		t.PC = pc + 1
	case isa.OpAddi:
		t.Regs[in.Rd] = t.Regs[in.Rs1] + uint32(in.Imm12)
		t.PC = pc + 1
	case isa.OpCmp:
		m.setFlags(t, t.Regs[in.Rs1], t.Regs[in.Rs2])
		t.PC = pc + 1
	case isa.OpCmpi:
		m.setFlags(t, t.Regs[in.Rs1], uint32(in.Imm12))
		t.PC = pc + 1
	case isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge:
		if m.branchTaken(t, in.Op) {
			t.PC = in.Imm16
		} else {
			t.PC = pc + 1
		}
	case isa.OpJmp:
		t.PC = in.Imm16
	case isa.OpJr:
		t.PC = t.Regs[in.Rs1]
	case isa.OpCall:
		if len(t.Stack) >= m.cfg.MaxStack {
			m.fault(t, TrapStackFault, pc, false)
			return
		}
		t.Stack = append(t.Stack, pc+1)
		t.PC = in.Imm16
	case isa.OpCalr:
		if len(t.Stack) >= m.cfg.MaxStack {
			m.fault(t, TrapStackFault, pc, false)
			return
		}
		t.Stack = append(t.Stack, pc+1)
		t.PC = t.Regs[in.Rs1]
	case isa.OpRet:
		if len(t.Stack) == 0 {
			m.fault(t, TrapStackFault, pc, false)
			return
		}
		t.PC = t.Stack[len(t.Stack)-1]
		t.Stack = t.Stack[:len(t.Stack)-1]
	case isa.OpLd:
		addr := int(t.Regs[in.Rs1]) + int(in.Imm12)
		if addr < 0 || addr >= len(t.Mem) {
			m.fault(t, TrapMemFault, pc, false)
			return
		}
		t.Regs[in.Rd] = t.Mem[addr]
		t.PC = pc + 1
	case isa.OpSt:
		addr := int(t.Regs[in.Rs1]) + int(in.Imm12)
		if addr < 0 || addr >= len(t.Mem) {
			m.fault(t, TrapMemFault, pc, false)
			return
		}
		t.Mem[addr] = t.Regs[in.Rs2]
		t.PC = pc + 1
	case isa.OpSys:
		if m.sys == nil {
			m.fault(t, TrapIllegal, pc, false)
			return
		}
		if trap := m.sys(t, in.Imm16); trap != TrapNone {
			m.fault(t, trap, pc, false)
			return
		}
		t.PC = pc + 1
	case isa.OpAssert:
		m.assert(t, pc, int(in.Imm16))
	default:
		m.fault(t, TrapIllegal, pc, false)
	}
}

// assert executes a PECOS assertion block (Figure 7): determine the
// runtime target of the protected CFI preemptively, compare it against the
// embedded valid-target words, and raise a divide-by-zero trap on an
// impending illegal transfer — before the transfer executes.
func (m *VM) assert(t *Thread, pc uint32, nTargets int) {
	t.TrapTarget = 0
	cfiAddr := pc + 1 + uint32(nTargets)
	if nTargets <= 0 || int(cfiAddr) >= len(m.text) {
		// The assertion header itself is damaged: structural violation.
		m.fault(t, TrapDivZero, pc, true)
		return
	}
	targets := make([]uint32, nTargets)
	for i := 0; i < nTargets; i++ {
		w, ok := m.fetch(t, pc+1+uint32(i))
		if !ok {
			m.fault(t, TrapDivZero, pc, true)
			return
		}
		targets[i] = w
	}
	cfiWord, ok := m.fetch(t, cfiAddr)
	if !ok {
		m.fault(t, TrapDivZero, pc, true)
		return
	}
	cfi, err := isa.Decode(cfiWord)
	if err != nil || !cfi.Op.IsCFI() {
		// The protected slot no longer holds a CFI: the control-flow
		// structure itself was corrupted.
		m.fault(t, TrapDivZero, pc, true)
		return
	}
	xout, known := m.runtimeTarget(t, cfi, cfiAddr)
	if !known {
		// Target indeterminable (e.g. return with empty stack): treat
		// as illegal transfer.
		m.fault(t, TrapDivZero, pc, true)
		return
	}
	// ID := Xout * 1/P with P = !((Xout-X1)*(Xout-X2)...): P is zero —
	// and the division traps — exactly when Xout matches no valid target.
	p := uint32(1)
	prod := uint32(1)
	for _, x := range targets {
		prod *= xout - x
	}
	if prod != 0 {
		p = 0
	}
	if p == 0 {
		// Record the rejected runtime target: (assert PC, Xout) is the
		// offending signature pair the PECOS handler reports.
		t.TrapTarget = xout
		m.fault(t, TrapDivZero, pc, true)
		return
	}
	// Valid transfer: fall through to the CFI itself.
	t.PC = cfiAddr
}

// runtimeTarget determines the target address the CFI at cfiAddr would
// transfer to, per §6.1.1: (a) for static CFIs the target is the constant
// embedded in the instruction stream — validating the embedded constant
// itself means a corrupted displacement is caught even on an execution
// where the branch would fall through (the fall-through address is in the
// valid set anyway); (b) for runtime-calculated targets it is the register
// value; (c) for returns it is the saved return address.
func (m *VM) runtimeTarget(t *Thread, cfi isa.Instr, cfiAddr uint32) (uint32, bool) {
	switch cfi.Op {
	case isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge, isa.OpJmp, isa.OpCall:
		return cfi.Imm16, true
	case isa.OpJr, isa.OpCalr:
		return t.Regs[cfi.Rs1], true
	case isa.OpRet:
		if len(t.Stack) == 0 {
			return 0, false
		}
		return t.Stack[len(t.Stack)-1], true
	}
	return 0, false
}

func (m *VM) branchTaken(t *Thread, op isa.Op) bool {
	switch op {
	case isa.OpBeq:
		return t.FlagZ
	case isa.OpBne:
		return !t.FlagZ
	case isa.OpBlt:
		return t.FlagN
	case isa.OpBge:
		return !t.FlagN
	}
	return false
}

func (m *VM) setFlags(t *Thread, a, b uint32) {
	t.FlagZ = a == b
	t.FlagN = int32(a) < int32(b)
}

// fetch reads the instruction word at pc, applying the injection hook.
func (m *VM) fetch(t *Thread, pc uint32) (uint32, bool) {
	if int(pc) >= len(m.text) {
		return 0, false
	}
	w := m.text[pc]
	if m.OnFetch != nil {
		w = m.OnFetch(t, pc, w)
	}
	return w, true
}

// fault records a trap and applies the handler's decision.
func (m *VM) fault(t *Thread, trap Trap, pc uint32, inAssert bool) {
	t.Trap = trap
	t.TrapPC = pc
	t.InAssert = inAssert
	action := ActionCrashProcess
	if m.OnTrap != nil {
		action = m.OnTrap(t, trap)
	}
	switch action {
	case ActionKillThread:
		t.State = ThreadKilled
	default:
		t.State = ThreadCrashed
		m.crashed = true
	}
}
