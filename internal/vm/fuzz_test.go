package vm

import (
	"encoding/binary"
	"testing"

	"repro/internal/isa"
)

// FuzzVMExecution feeds arbitrary bytes to the VM as a text segment: the
// machine must never panic, must terminate within the step budget or
// remain runnable, and must leave every thread in a defined state. This is
// the safety property the error injector depends on — corrupted
// instruction streams always fault cleanly.
func FuzzVMExecution(f *testing.F) {
	good, _ := isa.Assemble("movi r1, 3\nloop: addi r1, r1, -1\ncmpi r1, 0\nbne loop\nhalt")
	seed := make([]byte, len(good)*4)
	for i, w := range good {
		binary.LittleEndian.PutUint32(seed[i*4:], w)
	}
	f.Add(seed)
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x01, 0x02, 0x03, 0x04})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) < 4 {
			return
		}
		text := make([]uint32, 0, len(raw)/4)
		for i := 0; i+4 <= len(raw) && len(text) < 4096; i += 4 {
			text = append(text, binary.LittleEndian.Uint32(raw[i:]))
		}
		m, err := New(text, 2, DefaultConfig(), func(th *Thread, num uint32) Trap {
			th.Regs[0] = num
			return TrapNone
		})
		if err != nil {
			return
		}
		const budget = 4096
		ran := m.Run(budget)
		if ran > budget {
			t.Fatalf("ran %d steps over budget %d", ran, budget)
		}
		for _, th := range m.Threads() {
			switch th.State {
			case ThreadRunning, ThreadHalted, ThreadKilled, ThreadCrashed:
			default:
				t.Fatalf("thread %d in undefined state %d", th.ID, th.State)
			}
			if th.State == ThreadCrashed && th.Trap == TrapNone {
				t.Fatalf("crashed thread %d has no trap", th.ID)
			}
		}
	})
}
