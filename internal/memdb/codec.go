package memdb

import "encoding/binary"

// All on-region values are little-endian. Field access goes through these
// explicit codecs (rather than struct overlays) because the region is the
// error-injection target: audits and injectors must agree on the exact byte
// layout.

func putU16(b []byte, off int, v uint16) { binary.LittleEndian.PutUint16(b[off:off+2], v) }
func getU16(b []byte, off int) uint16    { return binary.LittleEndian.Uint16(b[off : off+2]) }
func putU32(b []byte, off int, v uint32) { binary.LittleEndian.PutUint32(b[off:off+4], v) }
func getU32(b []byte, off int) uint32    { return binary.LittleEndian.Uint32(b[off : off+4]) }
