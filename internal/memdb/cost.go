package memdb

import "time"

// Op names the database API operations of the paper's Table 1 (plus the
// allocation pair the call-processing workload uses).
type Op int

// API operations.
const (
	OpInit Op = iota + 1
	OpClose
	OpReadRec
	OpReadFld
	OpWriteRec
	OpWriteFld
	OpMove
	OpAlloc
	OpFree
	numOps = OpFree
)

// String returns the paper's name for the operation.
func (o Op) String() string {
	switch o {
	case OpInit:
		return "DBinit"
	case OpClose:
		return "DBclose"
	case OpReadRec:
		return "DBread_rec"
	case OpReadFld:
		return "DBread_fld"
	case OpWriteRec:
		return "DBwrite_rec"
	case OpWriteFld:
		return "DBwrite_fld"
	case OpMove:
		return "DBmove"
	case OpAlloc:
		return "DBalloc"
	case OpFree:
		return "DBfree"
	default:
		return "unknown"
	}
}

// CostModel charges virtual time for each API call: a base cost for the
// original function plus an audit overhead charged only when audit support
// is enabled. Base costs and overhead fractions are calibrated to Figure 4
// of the paper (average running times in tens-to-hundreds of microseconds;
// overhead 6.5% for DBinit up to 45.2% for DBwrite_rec, dominated by the
// event notification to the audit process).
type CostModel struct {
	Base     map[Op]time.Duration
	Overhead map[Op]float64 // fraction of base added when audited
}

// DefaultCostModel returns the Figure 4 calibration.
func DefaultCostModel() CostModel {
	return CostModel{
		Base: map[Op]time.Duration{
			OpInit:     620 * time.Microsecond,
			OpClose:    180 * time.Microsecond,
			OpReadRec:  120 * time.Microsecond,
			OpReadFld:  95 * time.Microsecond,
			OpWriteRec: 430 * time.Microsecond,
			OpWriteFld: 240 * time.Microsecond,
			OpMove:     310 * time.Microsecond,
			OpAlloc:    150 * time.Microsecond,
			OpFree:     130 * time.Microsecond,
		},
		Overhead: map[Op]float64{
			OpInit:     0.065,
			OpClose:    0.191,
			OpReadRec:  0.105,
			OpReadFld:  0.103,
			OpWriteRec: 0.452,
			OpWriteFld: 0.294,
			OpMove:     0.258,
			OpAlloc:    0.30, // write-class: posts an event message
			OpFree:     0.30,
		},
	}
}

// Cost returns the charged duration for op, with or without audit support.
func (m CostModel) Cost(op Op, audited bool) time.Duration {
	base := m.Base[op]
	if !audited {
		return base
	}
	return base + time.Duration(float64(base)*m.Overhead[op])
}

// OpCounts tallies API invocations and charged time, for the Figure 4
// reproduction and the client's call-setup-time accounting.
type OpCounts struct {
	Calls map[Op]uint64
	Time  map[Op]time.Duration
}

func newOpCounts() *OpCounts {
	return &OpCounts{
		Calls: make(map[Op]uint64, numOps),
		Time:  make(map[Op]time.Duration, numOps),
	}
}

func (c *OpCounts) note(op Op, d time.Duration) {
	c.Calls[op]++
	c.Time[op] += d
}
