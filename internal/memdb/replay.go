package memdb

import "fmt"

// Direct mutators for log replay and replica apply. Like the audit's direct
// accessors these bypass locking and session state: a WAL record or a
// shipped replication record describes a mutation that already passed the
// API's checks on the originating node, so replay applies it by true offset,
// bumping shadow versions exactly as the API path would. All of them are
// single-writer calls — replay runs on the recovering process before serving
// starts, and replica apply runs on the standby's executor.

// WriteRecDirect writes all fields of record ri in table ti by true offset,
// without requiring active status (replay may apply a write that preceded a
// later logged Free).
func (db *DB) WriteRecDirect(ti, ri int, vals []uint32) error {
	off, err := db.TrueRecordOffset(ti, ri)
	if err != nil {
		return err
	}
	nf := len(db.schema.Tables[ti].Fields)
	if len(vals) != nf {
		return fmt.Errorf("memdb: WriteRecDirect got %d values for %d fields", len(vals), nf)
	}
	defer db.mutate()()
	for fi, v := range vals {
		putU32(db.region, off+RecordHeaderSize+FieldSize*fi, v)
	}
	db.shadow.noteWrite(ti, ri, 0, db.now())
	return nil
}

// AllocDirect activates record ri of table ti and assigns it to group — the
// replay of an Alloc whose chosen index was recorded in the log. A record
// already active is first unlinked so replay after a partial checkpoint is
// idempotent.
func (db *DB) AllocDirect(ti, ri, group int) error {
	off, err := db.TrueRecordOffset(ti, ri)
	if err != nil {
		return err
	}
	defer db.mutate()()
	if n := db.groupCount(ti); n > 0 {
		if group < 0 || group >= n {
			return &BoundsError{What: "group", Index: group, Limit: n}
		}
		if db.region[off+1] == StatusActive {
			if err := db.unlinkFromGroup(ti, ri); err != nil {
				return err
			}
		}
		db.region[off+1] = StatusActive
		if err := db.linkIntoGroup(ti, ri, group); err != nil {
			return err
		}
	} else {
		if group < 0 || group > 0xFFFF {
			return &BoundsError{What: "group", Index: group, Limit: 0x10000}
		}
		db.region[off+1] = StatusActive
		putU16(db.region, off+4, uint16(group))
	}
	db.shadow.noteWrite(ti, ri, 0, db.now())
	return nil
}

// MoveDirect reassigns record ri of table ti to newGroup (replay of DBmove).
func (db *DB) MoveDirect(ti, ri, newGroup int) error {
	off, err := db.TrueRecordOffset(ti, ri)
	if err != nil {
		return err
	}
	defer db.mutate()()
	if db.region[off+1] != StatusActive {
		return fmt.Errorf("table %d record %d: %w", ti, ri, ErrNotActive)
	}
	if n := db.groupCount(ti); n > 0 {
		if newGroup < 0 || newGroup >= n {
			return &BoundsError{What: "group", Index: newGroup, Limit: n}
		}
		if err := db.unlinkFromGroup(ti, ri); err != nil {
			return err
		}
		if err := db.linkIntoGroup(ti, ri, newGroup); err != nil {
			return err
		}
	} else {
		if newGroup < 0 || newGroup > 0xFFFF {
			return &BoundsError{What: "group", Index: newGroup, Limit: 0x10000}
		}
		putU16(db.region, off+4, uint16(newGroup))
	}
	db.shadow.noteWrite(ti, ri, 0, db.now())
	return nil
}

// TouchVersion bumps the shadow version of record ri in table ti, marking an
// out-of-band mutation so in-flight audits of the record invalidate. The
// replica applier calls it after WriteFieldDirect, which (being an audit
// recovery primitive) deliberately does not bump versions itself.
func (db *DB) TouchVersion(ti, ri int) {
	if db.shadow.valid(ti, ri) {
		db.shadow.records[ti][ri].Version++
	}
}
