package memdb

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestSnapshotMatchesPristineRegion(t *testing.T) {
	db := mustDB(t)
	if !bytes.Equal(db.Raw(), db.SnapshotBytes()) {
		t.Fatal("snapshot differs from pristine region")
	}
}

func TestFlipBitAndReload(t *testing.T) {
	db := mustDB(t)
	off := db.Size() / 2
	orig := db.Raw()[off]
	if err := db.FlipBit(off, 3); err != nil {
		t.Fatalf("FlipBit: %v", err)
	}
	if db.Raw()[off] == orig {
		t.Fatal("FlipBit did not change the byte")
	}
	if err := db.ReloadExtent(off, 1); err != nil {
		t.Fatalf("ReloadExtent: %v", err)
	}
	if db.Raw()[off] != orig {
		t.Fatal("ReloadExtent did not restore the byte")
	}
}

func TestFlipBitBounds(t *testing.T) {
	db := mustDB(t)
	if err := db.FlipBit(-1, 0); err == nil {
		t.Fatal("FlipBit(-1) succeeded")
	}
	if err := db.FlipBit(db.Size(), 0); err == nil {
		t.Fatal("FlipBit(size) succeeded")
	}
	if err := db.FlipBit(0, 8); err == nil {
		t.Fatal("FlipBit(bit 8) succeeded")
	}
}

func TestReloadAllRestoresEverything(t *testing.T) {
	db := mustDB(t)
	c := mustClient(t, db)
	_, _ = c.Alloc(tblConn, 1)
	for i := 0; i < 50; i++ {
		_ = db.FlipBit(i*7%db.Size(), uint(i%8))
	}
	db.ReloadAll()
	if !bytes.Equal(db.Raw(), db.SnapshotBytes()) {
		t.Fatal("ReloadAll did not restore the pristine image")
	}
}

func TestReloadExtentBounds(t *testing.T) {
	db := mustDB(t)
	if err := db.ReloadExtent(-1, 4); err == nil {
		t.Fatal("negative offset accepted")
	}
	if err := db.ReloadExtent(0, db.Size()+1); err == nil {
		t.Fatal("oversized extent accepted")
	}
	if err := db.ReloadExtent(4, -1); err == nil {
		t.Fatal("negative length accepted")
	}
}

func TestCatalogExtentCoversDescriptors(t *testing.T) {
	db := mustDB(t)
	ext := db.CatalogExtent()
	if ext.Off != 0 {
		t.Fatalf("catalog offset = %d, want 0", ext.Off)
	}
	_, tableOffs, _ := layoutSize(db.Schema())
	if ext.Len != tableOffs[0] {
		t.Fatalf("catalog length = %d, want %d", ext.Len, tableOffs[0])
	}
}

func TestStaticExtents(t *testing.T) {
	db := mustDB(t)
	exts := db.StaticExtents()
	// Catalog + the one static table (SysConfig).
	if len(exts) != 2 {
		t.Fatalf("StaticExtents = %d extents, want 2", len(exts))
	}
	if exts[0].Name != "catalog" || exts[1].Name != "SysConfig" {
		t.Fatalf("extent names = %q, %q", exts[0].Name, exts[1].Name)
	}
	te, err := db.TableExtent(tblConfig)
	if err != nil {
		t.Fatal(err)
	}
	if exts[1] != te {
		t.Fatalf("static table extent %+v != TableExtent %+v", exts[1], te)
	}
}

func TestTableExtentBounds(t *testing.T) {
	db := mustDB(t)
	if _, err := db.TableExtent(-1); err == nil {
		t.Fatal("TableExtent(-1) succeeded")
	}
	if _, err := db.TableExtent(99); err == nil {
		t.Fatal("TableExtent(99) succeeded")
	}
}

func TestRewriteHeaderRepairsIdentity(t *testing.T) {
	db := mustDB(t)
	c := mustClient(t, db)
	ri, _ := c.Alloc(tblConn, 7)
	off, _ := db.TrueRecordOffset(tblConn, ri)
	// Corrupt the record identifier.
	db.Raw()[off+2] ^= 0xA5
	h := db.HeaderAt(off)
	if h.RecordID == ri {
		t.Fatal("corruption did not change RecordID")
	}
	if err := db.RewriteHeader(tblConn, ri); err != nil {
		t.Fatalf("RewriteHeader: %v", err)
	}
	h = db.HeaderAt(off)
	if h.RecordID != ri || h.TableID != tblConn {
		t.Fatalf("header after repair = %+v", h)
	}
	// Status and group survive the repair.
	if h.Status != StatusActive || h.GroupID != 7 {
		t.Fatalf("repair clobbered status/group: %+v", h)
	}
}

func TestDirectFieldAccess(t *testing.T) {
	db := mustDB(t)
	if err := db.WriteFieldDirect(tblProc, 2, 1, 42); err != nil {
		t.Fatalf("WriteFieldDirect: %v", err)
	}
	v, err := db.ReadFieldDirect(tblProc, 2, 1)
	if err != nil || v != 42 {
		t.Fatalf("ReadFieldDirect = (%d,%v), want 42", v, err)
	}
	if _, err := db.ReadFieldDirect(tblProc, 2, 99); err == nil {
		t.Fatal("ReadFieldDirect with bad field succeeded")
	}
	if err := db.WriteFieldDirect(tblProc, 99, 0, 1); err == nil {
		t.Fatal("WriteFieldDirect with bad record succeeded")
	}
}

func TestFreeRecordDirect(t *testing.T) {
	db := mustDB(t)
	c := mustClient(t, db)
	ri, _ := c.Alloc(tblRes, 3)
	_ = c.WriteFld(tblRes, ri, 0, 5)
	verBefore := db.Version(tblRes, ri)
	if err := db.FreeRecordDirect(tblRes, ri); err != nil {
		t.Fatalf("FreeRecordDirect: %v", err)
	}
	st, _ := db.StatusDirect(tblRes, ri)
	if st != StatusFree {
		t.Fatalf("status = %d, want free", st)
	}
	v, _ := db.ReadFieldDirect(tblRes, ri, 0)
	if v != db.Schema().Tables[tblRes].Fields[0].Default {
		t.Fatalf("field after free = %d, want default", v)
	}
	if db.Version(tblRes, ri) != verBefore+1 {
		t.Fatal("FreeRecordDirect did not bump the version")
	}
}

func TestNoteAuditErrorAndCycle(t *testing.T) {
	db := mustDB(t)
	db.NoteAuditError(tblConn)
	db.NoteAuditError(tblConn)
	db.NoteAuditError(tblRes)
	ts := db.TableStats(tblConn)
	if ts.ErrorsLast != 2 || ts.ErrorsAll != 2 {
		t.Fatalf("TableStats = %+v", ts)
	}
	cycle := db.EndAuditCycle()
	if cycle[tblConn] != 2 || cycle[tblRes] != 1 || cycle[tblProc] != 0 {
		t.Fatalf("cycle = %v", cycle)
	}
	ts = db.TableStats(tblConn)
	if ts.ErrorsLast != 0 || ts.ErrorsAll != 2 {
		t.Fatalf("after cycle: %+v", ts)
	}
	db.NoteAuditError(-1) // out of range: no panic
	db.NoteAuditError(99)
}

func TestMetaBounds(t *testing.T) {
	db := mustDB(t)
	if _, err := db.Meta(99, 0); err == nil {
		t.Fatal("Meta with bad table succeeded")
	}
	if db.Version(99, 0) != 0 {
		t.Fatal("Version with bad table nonzero")
	}
	if (db.TableStats(99) != TableStats{}) {
		t.Fatal("TableStats with bad table nonzero")
	}
}

func TestLockHolderBounds(t *testing.T) {
	db := mustDB(t)
	if _, _, held := db.LockHolder(-1); held {
		t.Fatal("LockHolder(-1) reported held")
	}
	if _, _, held := db.LockHolder(99); held {
		t.Fatal("LockHolder(99) reported held")
	}
}

func TestNewRejectsInvalidSchema(t *testing.T) {
	_, err := New(Schema{})
	if err == nil {
		t.Fatal("New with empty schema succeeded")
	}
}

func TestConnectAssignsUniquePIDs(t *testing.T) {
	db := mustDB(t)
	seen := make(map[int]bool)
	for i := 0; i < 10; i++ {
		c := mustClient(t, db)
		if seen[c.PID()] {
			t.Fatalf("duplicate PID %d", c.PID())
		}
		seen[c.PID()] = true
	}
}

// Property: a write through the API is always observable through both the
// API read path and the direct audit path, for any in-range field value.
func TestPropertyWriteReadAgreement(t *testing.T) {
	db := mustDB(t)
	c := mustClient(t, db)
	ri, err := c.Alloc(tblConn, 0)
	if err != nil {
		t.Fatal(err)
	}
	f := func(v uint32) bool {
		if err := c.WriteFld(tblConn, ri, 1, v); err != nil {
			return false
		}
		api, err := c.ReadFld(tblConn, ri, 1)
		if err != nil {
			return false
		}
		direct, err := db.ReadFieldDirect(tblConn, ri, 1)
		if err != nil {
			return false
		}
		return api == v && direct == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: flipping a bit and flipping it back always restores region
// equality with the snapshot (on a fresh database).
func TestPropertyFlipIsInvolution(t *testing.T) {
	db := mustDB(t)
	f := func(rawOff uint16, bit uint8) bool {
		off := int(rawOff) % db.Size()
		b := uint(bit % 8)
		if err := db.FlipBit(off, b); err != nil {
			return false
		}
		if bytes.Equal(db.Raw(), db.SnapshotBytes()) {
			return false // flip must be visible
		}
		if err := db.FlipBit(off, b); err != nil {
			return false
		}
		return bytes.Equal(db.Raw(), db.SnapshotBytes())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestErrLockedWraps(t *testing.T) {
	db := mustDB(t)
	a := mustClient(t, db)
	b := mustClient(t, db)
	if err := a.Begin(tblProc); err != nil {
		t.Fatal(err)
	}
	err := b.Begin(tblProc)
	if !errors.Is(err, ErrLocked) {
		t.Fatalf("Begin on held table: %v", err)
	}
}
