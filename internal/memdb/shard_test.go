package memdb

import "testing"

func TestShardMappingRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7} {
		counts := make(map[int]int)
		for g := 0; g < 100; g++ {
			k := ShardOf(g, n)
			if k < 0 || k >= n {
				t.Fatalf("ShardOf(%d,%d) = %d out of range", g, n, k)
			}
			l := LocalIndex(g, n)
			if back := GlobalIndex(l, k, n); back != g {
				t.Fatalf("n=%d: GlobalIndex(LocalIndex(%d)) = %d", n, g, back)
			}
			counts[k]++
		}
		// Striping balances: shard loads differ by at most one.
		min, max := 100, 0
		for k := 0; k < n; k++ {
			if counts[k] < min {
				min = counts[k]
			}
			if counts[k] > max {
				max = counts[k]
			}
		}
		if max-min > 1 {
			t.Fatalf("n=%d: unbalanced stripe: %v", n, counts)
		}
	}
}

func TestShardRecordsSumsToTotal(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5} {
		for total := n; total < 40; total++ {
			sum := 0
			for k := 0; k < n; k++ {
				r := ShardRecords(total, k, n)
				if r <= 0 {
					t.Fatalf("ShardRecords(%d,%d,%d) = %d", total, k, n, r)
				}
				sum += r
			}
			if sum != total {
				t.Fatalf("n=%d total=%d: shard records sum to %d", n, total, sum)
			}
		}
	}
}

func TestShardSchemas(t *testing.T) {
	schema := Schema{Tables: []TableSpec{
		{Name: "Cfg", NumRecords: 16, Fields: []FieldSpec{{Name: "a", Kind: Static}}},
		{Name: "Dyn", Dynamic: true, NumRecords: 25, Groups: 4,
			Fields: []FieldSpec{{Name: "b", Kind: Dynamic}}},
	}}
	shards, err := ShardSchemas(schema, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 4 {
		t.Fatalf("got %d shard schemas", len(shards))
	}
	totals := make([]int, len(schema.Tables))
	for k, sh := range shards {
		if err := sh.Validate(); err != nil {
			t.Fatalf("shard %d schema invalid: %v", k, err)
		}
		for ti, tbl := range sh.Tables {
			if tbl.Name != schema.Tables[ti].Name || tbl.Groups != schema.Tables[ti].Groups ||
				tbl.Dynamic != schema.Tables[ti].Dynamic {
				t.Fatalf("shard %d table %d lost spec fields: %+v", k, ti, tbl)
			}
			totals[ti] += tbl.NumRecords
		}
	}
	for ti, tot := range totals {
		if tot != schema.Tables[ti].NumRecords {
			t.Fatalf("table %d shard records sum to %d, want %d", ti, tot, schema.Tables[ti].NumRecords)
		}
	}
	// Derived schemas must not alias the original's table slice.
	shards[0].Tables[0].NumRecords = 1
	if schema.Tables[0].NumRecords != 16 {
		t.Fatal("ShardSchemas aliased the input schema")
	}
	// Too many shards for the smallest table.
	if _, err := ShardSchemas(schema, 17); err == nil {
		t.Fatal("ShardSchemas accepted more shards than records")
	}
}
