package memdb

import (
	"errors"
	"fmt"
)

// Sentinel errors returned by the database API. Clients match these to
// distinguish recoverable conditions (lock contention, exhaustion) from
// corruption-induced failures.
var (
	// ErrCorruptCatalog indicates the system catalog failed validation
	// during an operation. The paper notes catalog corruption "can cause
	// all database operations to fail, thus bringing down the whole
	// controller"; the API surfaces it rather than crashing.
	ErrCorruptCatalog = errors.New("memdb: system catalog corrupted")
	// ErrLocked indicates another client holds the table lock.
	ErrLocked = errors.New("memdb: table locked by another client")
	// ErrNoFreeRecord indicates the pre-allocated table is exhausted.
	ErrNoFreeRecord = errors.New("memdb: no free record in table")
	// ErrClosed indicates the client connection has been closed.
	ErrClosed = errors.New("memdb: connection closed")
	// ErrNotActive indicates an operation on a record that is not active.
	ErrNotActive = errors.New("memdb: record not active")
)

// BoundsError reports an access that fell outside the valid table, record,
// or field range — whether because the caller passed bad indices or because
// a corrupted catalog descriptor produced an out-of-range address.
type BoundsError struct {
	What  string
	Index int
	Limit int
}

func (e *BoundsError) Error() string {
	return fmt.Sprintf("memdb: %s index %d out of range (limit %d)", e.What, e.Index, e.Limit)
}
