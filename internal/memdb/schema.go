// Package memdb implements the paper's in-memory controller database: a
// single contiguous memory region holding pre-allocated, fixed-size tables,
// fronted by a system catalog and accessed through the API of the paper's
// Table 1 (DBinit, DBclose, DBread_rec, DBread_fld, DBwrite_rec,
// DBwrite_fld, DBmove).
//
// The organization follows §3.1.2: the whole database lives in one
// contiguous region so it can be shared, snapshot, checksummed, and — for
// the reproduction — bit-flipped by the error injector at arbitrary
// offsets; no dynamic allocation happens after startup; every record starts
// with header fields (record identifier and logical-group links) that the
// structural audit validates at computed offsets.
package memdb

import (
	"errors"
	"fmt"
)

// FieldKind classifies a field as static configuration data or dynamic
// runtime state (§3.1.2: "each table usually contains a mixture of static
// and dynamic data").
type FieldKind uint8

// Field kinds.
const (
	// Static fields hold configuration data constant during operation;
	// they are covered by the golden checksum audit.
	Static FieldKind = iota + 1
	// Dynamic fields hold runtime state; they are covered by range,
	// structural, and semantic audits.
	Dynamic
)

// String returns the kind name.
func (k FieldKind) String() string {
	switch k {
	case Static:
		return "static"
	case Dynamic:
		return "dynamic"
	}
	return "unknown"
}

// FieldSpec describes one uint32 field of a table record. Range limits and
// the default value are stored into the system catalog region, where the
// dynamic-data audit reads them back (§4.3.1: "the range of allowable
// values for database fields are stored in the database system catalog").
type FieldSpec struct {
	Name     string
	Kind     FieldKind
	HasRange bool   // whether Min/Max are enforceable by the range audit
	Min, Max uint32 // inclusive bounds, meaningful when HasRange
	Default  uint32 // recovery value when the range audit trips
}

// TableSpec describes one pre-allocated table.
type TableSpec struct {
	Name       string
	Dynamic    bool // dynamic tables have records allocated/freed at runtime
	NumRecords int
	Fields     []FieldSpec
	// Groups, when positive, gives the table an on-region logical-group
	// directory: records allocated into a group are chained through
	// their header adjacency indexes from a per-group head slot, the
	// structure DBmove manipulates (§3.1.2: header fields contain
	// "indexes of logically adjacent records"). Zero disables chains;
	// group IDs are then plain labels.
	Groups int
}

// Schema is the full database definition. Table order defines on-region
// placement order and table IDs.
type Schema struct {
	Tables []TableSpec
}

// Validate checks structural soundness of the schema.
func (s Schema) Validate() error {
	if len(s.Tables) == 0 {
		return errors.New("memdb: schema has no tables")
	}
	if len(s.Tables) > 250 {
		return fmt.Errorf("memdb: %d tables exceeds the 250-table limit", len(s.Tables))
	}
	names := make(map[string]bool, len(s.Tables))
	for ti, tbl := range s.Tables {
		if tbl.Name == "" {
			return fmt.Errorf("memdb: table %d has empty name", ti)
		}
		if names[tbl.Name] {
			return fmt.Errorf("memdb: duplicate table name %q", tbl.Name)
		}
		names[tbl.Name] = true
		if tbl.NumRecords <= 0 || tbl.NumRecords > 0xFFFE {
			return fmt.Errorf("memdb: table %q has invalid record count %d", tbl.Name, tbl.NumRecords)
		}
		if tbl.Groups < 0 || tbl.Groups > 0xFFFF {
			return fmt.Errorf("memdb: table %q has invalid group count %d", tbl.Name, tbl.Groups)
		}
		if len(tbl.Fields) == 0 || len(tbl.Fields) > 0xFFFF {
			return fmt.Errorf("memdb: table %q has invalid field count %d", tbl.Name, len(tbl.Fields))
		}
		fieldNames := make(map[string]bool, len(tbl.Fields))
		for fi, f := range tbl.Fields {
			if f.Name == "" {
				return fmt.Errorf("memdb: table %q field %d has empty name", tbl.Name, fi)
			}
			if fieldNames[f.Name] {
				return fmt.Errorf("memdb: table %q duplicate field %q", tbl.Name, f.Name)
			}
			fieldNames[f.Name] = true
			if f.Kind != Static && f.Kind != Dynamic {
				return fmt.Errorf("memdb: table %q field %q has invalid kind %d", tbl.Name, f.Name, f.Kind)
			}
			if f.HasRange && f.Min > f.Max {
				return fmt.Errorf("memdb: table %q field %q has min %d > max %d", tbl.Name, f.Name, f.Min, f.Max)
			}
			if f.HasRange && (f.Default < f.Min || f.Default > f.Max) {
				return fmt.Errorf("memdb: table %q field %q default %d outside [%d,%d]",
					tbl.Name, f.Name, f.Default, f.Min, f.Max)
			}
		}
	}
	return nil
}

// TableIndex returns the index of the named table, or -1.
func (s Schema) TableIndex(name string) int {
	for i, t := range s.Tables {
		if t.Name == name {
			return i
		}
	}
	return -1
}

// FieldIndex returns the index of the named field in table t, or -1.
func (s Schema) FieldIndex(table int, name string) int {
	if table < 0 || table >= len(s.Tables) {
		return -1
	}
	for i, f := range s.Tables[table].Fields {
		if f.Name == name {
			return i
		}
	}
	return -1
}
