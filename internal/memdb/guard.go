package memdb

import (
	"sync/atomic"
	"time"
)

// Concurrent-access detector. DB is documented as not safe for concurrent
// use: every access must be serialized — on the simulation event loop, or
// on the network server's single-writer executor. A violation of that
// contract does not fail fast on its own; it silently corrupts the shared
// region, exactly the class of damage the audits exist to catch, except
// self-inflicted. The guard makes violations fail loudly instead: when
// enabled, every Table 1 API entry takes a busy flag with an atomic
// compare-and-swap; a second entry observing the flag held is, by the
// single-writer contract, proof of concurrent (or re-entrant) API use.
//
// The guard is a debug facility — enabled in tests and optionally by the
// server — and costs one nil check per API call when disabled.
//
// Validated readers are exempt: View reads (see view.go) run concurrently
// with API calls by design, proving consistency through the seqlock
// generation instead of serialization, so they never take the busy flag.
type guardState struct {
	busy       atomic.Int32
	violations atomic.Uint64
	// onViolation, when non-nil, observes violations instead of
	// panicking; it is fixed at enable time so the guard itself needs no
	// further synchronization.
	onViolation func(op string)
}

// EnableConcurrencyCheck arms the single-writer violation detector.
// onViolation receives the API operation name of the losing entry; a nil
// handler makes violations panic, so unsupervised code fails loudly.
// Enabling while API calls are in flight is itself a violation of the
// contract and unsupported.
func (db *DB) EnableConcurrencyCheck(onViolation func(op string)) {
	db.guard = &guardState{onViolation: onViolation}
}

// DisableConcurrencyCheck disarms the detector.
func (db *DB) DisableConcurrencyCheck() { db.guard = nil }

// GuardViolations reports how many concurrent-access violations the
// detector has observed since it was enabled.
func (db *DB) GuardViolations() uint64 {
	if db.guard == nil {
		return 0
	}
	return db.guard.violations.Load()
}

// guardNoop is the shared exit function for the disabled-guard fast path.
var guardNoop = func() {}

// guardEnter marks one API call in flight and returns its exit function.
// When another call already holds the busy flag the violation is recorded
// and the entry proceeds unguarded (the damage is done; the point is the
// loud report, not mutual exclusion).
func (db *DB) guardEnter(op string) func() {
	g := db.guard
	if g == nil {
		return guardNoop
	}
	if !g.busy.CompareAndSwap(0, 1) {
		g.violations.Add(1)
		if g.onViolation == nil {
			panic("memdb: concurrent API access detected during " + op +
				" (DB is single-writer; serialize all access)")
		}
		g.onViolation(op)
		return guardNoop
	}
	return func() { g.busy.Store(0) }
}

// SetClock replaces the virtual-time source after construction. The network
// server binds an already-built database (often loaded from an image) to
// its executor's clock this way; nil is ignored.
func (db *DB) SetClock(now func() time.Duration) {
	if now != nil {
		db.now = now
	}
}
