package memdb

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ipc"
)

// Extent is a half-open byte range [Off, Off+Len) of the region.
type Extent struct {
	Off, Len int
	Name     string
}

// lockState tracks a per-table lock. The API "maintains and manipulates
// locks transparently to the client processes" (§4.2); a crashed client can
// leave a lock behind, which the progress-indicator audit element resolves.
type lockState struct {
	held   bool
	holder int // client PID
	since  time.Duration
}

// DB is the in-memory database: one contiguous byte region, a pristine
// disk snapshot, lock table, shadow metadata, and the optional audit hook.
//
// DB is not safe for concurrent use; in this repository all access is
// serialized on the simulation event loop, matching the single shared
// memory region of the target controller.
type DB struct {
	schema   Schema
	region   []byte
	snapshot []byte // "permanent storage" copy for reload recovery
	shadow   *shadow
	locks    []lockState
	now      func() time.Duration
	costs    CostModel
	counts   *OpCounts
	queue    *ipc.Queue // audit notification channel; nil when unaudited
	audited  bool
	nextPID  int
	clients  map[int]*Client
	guard    *guardState   // debug concurrent-access detector; nil when off
	metrics  *boundMetrics // gauges published by RefreshMetrics; nil when unbound

	// Read fast lane (see view.go). regionMu serializes region access
	// between the single writer and validated View readers; regionVer is
	// the seqlock generation — even while stable, odd while a mutation is
	// in progress. viewReads accumulates per-table View read counts off
	// the owner thread until FoldViewReads drains them into the shadow
	// activity stats.
	regionMu  sync.RWMutex
	regionVer atomic.Uint64
	viewReads []atomic.Uint64
}

// Option configures a DB.
type Option func(*DB)

// WithClock supplies the virtual-time source for shadow timestamps and lock
// ages. Defaults to a zero clock.
func WithClock(now func() time.Duration) Option {
	return func(db *DB) { db.now = now }
}

// WithCostModel overrides the Figure 4 cost calibration.
func WithCostModel(m CostModel) Option {
	return func(db *DB) { db.costs = m }
}

// New builds the database region for schema, formats every table, and takes
// the startup snapshot.
func New(schema Schema, opts ...Option) (*DB, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	total, tableOffs, fieldOffs := layoutSize(schema)
	db := &DB{
		schema:  schema,
		region:  make([]byte, total),
		shadow:  newShadow(schema),
		locks:   make([]lockState, len(schema.Tables)),
		now:     func() time.Duration { return 0 },
		costs:   DefaultCostModel(),
		counts:  newOpCounts(),
		clients: make(map[int]*Client),
	}
	db.viewReads = make([]atomic.Uint64, len(schema.Tables))
	for _, opt := range opts {
		opt(db)
	}
	writeCatalog(db.region, schema, tableOffs, fieldOffs)
	db.snapshot = make([]byte, total)
	copy(db.snapshot, db.region)
	return db, nil
}

// Schema returns the database schema.
func (db *DB) Schema() Schema { return db.schema }

// Size returns the region length in bytes.
func (db *DB) Size() int { return len(db.region) }

// EnableAudit attaches the IPC queue over which the modified API notifies
// the audit process, and switches the cost model to its audited overheads.
func (db *DB) EnableAudit(q *ipc.Queue) {
	db.queue = q
	db.audited = true
}

// DisableAudit detaches the audit hook (used by the Figure 4 overhead
// comparison and the "without audit" campaigns).
func (db *DB) DisableAudit() {
	db.queue = nil
	db.audited = false
}

// Audited reports whether audit support is enabled.
func (db *DB) Audited() bool { return db.audited }

// Counts returns the API invocation tally.
func (db *DB) Counts() *OpCounts { return db.counts }

// Connect opens a client connection (the paper's DBinit) and returns the
// session handle. Each connection carries a unique process ID.
func (db *DB) Connect() (*Client, error) {
	defer db.guardEnter("DBinit")()
	db.nextPID++
	pid := db.nextPID
	c := &Client{db: db, pid: pid}
	db.clients[pid] = c
	db.charge(OpInit, pid, -1, -1)
	return c, nil
}

// ClientByPID returns the connected client with the given PID, or nil.
func (db *DB) ClientByPID(pid int) *Client { return db.clients[pid] }

// charge accounts virtual cost for op and posts the audit notification.
// Returns the charged duration so clients can accumulate setup time.
func (db *DB) charge(op Op, pid, table, record int) time.Duration {
	d := db.costs.Cost(op, db.audited)
	db.counts.note(op, d)
	if db.queue != nil {
		kind := ipc.MsgDBAccess
		switch op {
		case OpWriteRec, OpWriteFld, OpMove, OpAlloc, OpFree:
			kind = ipc.MsgDBWrite
		}
		// A full queue only loses one notification; the audit process
		// recovers on the next message, so drops are tolerated here.
		_ = db.queue.TrySend(ipc.Message{
			Kind:   kind,
			PID:    pid,
			Table:  table,
			Record: record,
			Op:     op.String(),
			At:     db.now(),
		})
	}
	return d
}

// acquire takes table's lock for pid, or reports the holder.
func (db *DB) acquire(table, pid int) error {
	if table < 0 || table >= len(db.locks) {
		return &BoundsError{What: "table", Index: table, Limit: len(db.locks)}
	}
	l := &db.locks[table]
	if l.held && l.holder != pid {
		return fmt.Errorf("table %d held by pid %d since %v: %w", table, l.holder, l.since, ErrLocked)
	}
	if !l.held {
		l.held = true
		l.holder = pid
		l.since = db.now()
	}
	return nil
}

// release drops table's lock if pid holds it.
func (db *DB) release(table, pid int) {
	if table < 0 || table >= len(db.locks) {
		return
	}
	l := &db.locks[table]
	if l.held && l.holder == pid {
		*l = lockState{}
	}
}

// LockHolder reports the holder PID and hold duration of table's lock.
// held is false when the lock is free.
func (db *DB) LockHolder(table int) (pid int, heldFor time.Duration, held bool) {
	if table < 0 || table >= len(db.locks) {
		return 0, 0, false
	}
	l := db.locks[table]
	if !l.held {
		return 0, 0, false
	}
	return l.holder, db.now() - l.since, true
}

// ReleaseAllLocks force-releases every lock held by pid. The progress
// indicator calls this after terminating a stuck client (§4.2 recovery).
func (db *DB) ReleaseAllLocks(pid int) int {
	n := 0
	for i := range db.locks {
		if db.locks[i].held && db.locks[i].holder == pid {
			db.locks[i] = lockState{}
			n++
		}
	}
	return n
}

// --- Direct memory access (audit side) ---------------------------------
//
// Audit elements access the database directly, bypassing API locking, "to
// reduce contention with database clients" (§4). They use record versions
// from the shadow metadata to detect intervening updates.

// Raw returns the live region. Callers must treat it as volatile shared
// memory; it is exposed for audits and the error injector.
func (db *DB) Raw() []byte { return db.region }

// SnapshotBytes returns the pristine startup image ("permanent storage").
func (db *DB) SnapshotBytes() []byte { return db.snapshot }

// FlipBit flips one bit of the live region — the injector's database error
// model (random bit errors, §5.1).
func (db *DB) FlipBit(byteOff int, bit uint) error {
	if byteOff < 0 || byteOff >= len(db.region) {
		return &BoundsError{What: "byte", Index: byteOff, Limit: len(db.region)}
	}
	if bit > 7 {
		return &BoundsError{What: "bit", Index: int(bit), Limit: 8}
	}
	defer db.mutate()()
	db.region[byteOff] ^= 1 << bit
	return nil
}

// ReloadExtent restores [off, off+n) from the snapshot — the paper's
// "reload the affected portion from permanent storage" recovery.
func (db *DB) ReloadExtent(off, n int) error {
	if off < 0 || n < 0 || off+n > len(db.region) {
		return &BoundsError{What: "extent", Index: off + n, Limit: len(db.region)}
	}
	defer db.mutate()()
	copy(db.region[off:off+n], db.snapshot[off:off+n])
	return nil
}

// ReloadAll restores the entire database from the snapshot — the recovery
// for structural damage spanning multiple records (§4.3.2).
func (db *DB) ReloadAll() {
	defer db.mutate()()
	copy(db.region, db.snapshot)
}

// CatalogExtent returns the byte range of the system catalog, computed from
// the schema (not the possibly corrupted on-region catalog).
func (db *DB) CatalogExtent() Extent {
	_, tableOffs, _ := layoutSize(db.schema)
	end := len(db.region)
	if len(tableOffs) > 0 {
		end = tableOffs[0]
	}
	return Extent{Off: 0, Len: end, Name: "catalog"}
}

// TableExtent returns the byte range of table ti, computed from the schema.
func (db *DB) TableExtent(ti int) (Extent, error) {
	if ti < 0 || ti >= len(db.schema.Tables) {
		return Extent{}, &BoundsError{What: "table", Index: ti, Limit: len(db.schema.Tables)}
	}
	_, tableOffs, _ := layoutSize(db.schema)
	t := db.schema.Tables[ti]
	recSize := RecordHeaderSize + FieldSize*len(t.Fields)
	length := groupDirSize(t.Groups) + recSize*t.NumRecords
	return Extent{Off: tableOffs[ti], Len: length, Name: t.Name}, nil
}

// StaticExtents returns the extents covered by the golden static checksum:
// the system catalog plus every non-dynamic table (§4.3.1).
func (db *DB) StaticExtents() []Extent {
	exts := []Extent{db.CatalogExtent()}
	for i, t := range db.schema.Tables {
		if t.Dynamic {
			continue
		}
		ext, err := db.TableExtent(i)
		if err != nil {
			continue
		}
		exts = append(exts, ext)
	}
	return exts
}

// TrueRecordOffset computes record ri of table ti's offset from the schema,
// independent of catalog state. The structural audit uses it: "calculates
// the offset of each record header ... based on record sizes stored in
// system tables (all record sizes are fixed and known)".
func (db *DB) TrueRecordOffset(ti, ri int) (int, error) {
	if ti < 0 || ti >= len(db.schema.Tables) {
		return 0, &BoundsError{What: "table", Index: ti, Limit: len(db.schema.Tables)}
	}
	t := db.schema.Tables[ti]
	if ri < 0 || ri >= t.NumRecords {
		return 0, &BoundsError{What: "record", Index: ri, Limit: t.NumRecords}
	}
	_, tableOffs, _ := layoutSize(db.schema)
	recSize := RecordHeaderSize + FieldSize*len(t.Fields)
	return tableOffs[ti] + groupDirSize(t.Groups) + recSize*ri, nil
}

// HeaderAt decodes the record header at a known-true offset.
func (db *DB) HeaderAt(off int) Header { return decodeHeader(db.region, off) }

// RewriteHeader restores the header of record ri in table ti to its correct
// identity, preserving status/group/link fields — the structural audit's
// single-error correction ("the correct record ID can be inferred from the
// offset within the database").
func (db *DB) RewriteHeader(ti, ri int) error {
	off, err := db.TrueRecordOffset(ti, ri)
	if err != nil {
		return err
	}
	defer db.mutate()()
	db.region[off] = uint8(ti)
	putU16(db.region, off+2, uint16(ri))
	return nil
}

// ResetLink restores the group-link header field of record ri in table ti
// to the unlinked state — the structural audit's repair for a corrupted
// logical-adjacency index.
func (db *DB) ResetLink(ti, ri int) error {
	off, err := db.TrueRecordOffset(ti, ri)
	if err != nil {
		return err
	}
	defer db.mutate()()
	putU16(db.region, off+6, NilIndex)
	return nil
}

// ReadFieldDirect reads field fi of record ri in table ti using true
// offsets (audit path, no locks, no catalog dependence).
func (db *DB) ReadFieldDirect(ti, ri, fi int) (uint32, error) {
	off, err := db.TrueRecordOffset(ti, ri)
	if err != nil {
		return 0, err
	}
	if fi < 0 || fi >= len(db.schema.Tables[ti].Fields) {
		return 0, &BoundsError{What: "field", Index: fi, Limit: len(db.schema.Tables[ti].Fields)}
	}
	return getU32(db.region, off+RecordHeaderSize+FieldSize*fi), nil
}

// WriteFieldDirect writes field fi of record ri in table ti (audit recovery
// path: resetting a field to its default).
func (db *DB) WriteFieldDirect(ti, ri, fi int, v uint32) error {
	off, err := db.TrueRecordOffset(ti, ri)
	if err != nil {
		return err
	}
	if fi < 0 || fi >= len(db.schema.Tables[ti].Fields) {
		return &BoundsError{What: "field", Index: fi, Limit: len(db.schema.Tables[ti].Fields)}
	}
	defer db.mutate()()
	putU32(db.region, off+RecordHeaderSize+FieldSize*fi, v)
	return nil
}

// FreeRecordDirect frees record ri of table ti (audit recovery: freeing a
// zombie record drops at most one active call, which the environment
// tolerates).
func (db *DB) FreeRecordDirect(ti, ri int) error {
	defer db.mutate()()
	return db.freeRecordLocked(ti, ri)
}

// freeRecordLocked is FreeRecordDirect's body, factored out so callers that
// already hold the region write lock (RebuildGroups) can reuse it without
// re-entering the non-reentrant mutate bracket.
func (db *DB) freeRecordLocked(ti, ri int) error {
	off, err := db.TrueRecordOffset(ti, ri)
	if err != nil {
		return err
	}
	if db.groupCount(ti) > 0 && db.region[off+1] == StatusActive {
		if err := db.unlinkFromGroup(ti, ri); err != nil {
			return err
		}
	}
	formatHeader(db.region, off, ti, ri)
	for fi, f := range db.schema.Tables[ti].Fields {
		putU32(db.region, off+RecordHeaderSize+FieldSize*fi, f.Default)
	}
	db.shadow.records[ti][ri].Version++
	return nil
}

// StatusDirect reports the status byte of record ri in table ti.
func (db *DB) StatusDirect(ti, ri int) (int, error) {
	off, err := db.TrueRecordOffset(ti, ri)
	if err != nil {
		return 0, err
	}
	return int(db.region[off+1]), nil
}

// SnapshotField reads field fi of record ri in table ti from the pristine
// startup snapshot — the ground truth for static configuration data.
func (db *DB) SnapshotField(ti, ri, fi int) (uint32, error) {
	off, err := db.TrueRecordOffset(ti, ri)
	if err != nil {
		return 0, err
	}
	if fi < 0 || fi >= len(db.schema.Tables[ti].Fields) {
		return 0, &BoundsError{What: "field", Index: fi, Limit: len(db.schema.Tables[ti].Fields)}
	}
	return getU32(db.snapshot, off+RecordHeaderSize+FieldSize*fi), nil
}

// Location describes what a region byte offset belongs to.
type Location struct {
	// Catalog is true for bytes inside the system catalog.
	Catalog bool
	// Table and Record identify the containing record (when !Catalog).
	Table, Record int
	// GroupDir is true for bytes inside a table's logical-group chain
	// directory.
	GroupDir bool
	// Header is true for record-header bytes; otherwise Field names the
	// containing field.
	Header bool
	Field  int
}

// Locate maps a region byte offset to its logical location, using the
// schema's true layout. Experiments use it to classify injected errors by
// the audit technique responsible for that region.
func (db *DB) Locate(off int) (Location, error) {
	if off < 0 || off >= len(db.region) {
		return Location{}, &BoundsError{What: "byte", Index: off, Limit: len(db.region)}
	}
	_, tableOffs, _ := layoutSize(db.schema)
	if len(tableOffs) == 0 || off < tableOffs[0] {
		return Location{Catalog: true, Table: -1, Record: -1, Field: -1}, nil
	}
	for ti := len(db.schema.Tables) - 1; ti >= 0; ti-- {
		if off < tableOffs[ti] {
			continue
		}
		t := db.schema.Tables[ti]
		recSize := RecordHeaderSize + FieldSize*len(t.Fields)
		rel := off - tableOffs[ti]
		if rel < groupDirSize(t.Groups) {
			return Location{Table: ti, Record: -1, Field: -1, GroupDir: true}, nil
		}
		rel -= groupDirSize(t.Groups)
		ri := rel / recSize
		if ri >= t.NumRecords {
			break
		}
		inRec := rel % recSize
		loc := Location{Table: ti, Record: ri, Field: -1}
		if inRec < RecordHeaderSize {
			loc.Header = true
		} else {
			loc.Field = (inRec - RecordHeaderSize) / FieldSize
		}
		return loc, nil
	}
	return Location{}, fmt.Errorf("memdb: offset %d in table padding", off)
}

// CatalogFieldSpec decodes field fi of table ti from the live on-region
// catalog. The dynamic-data audit reads its range rules this way (§4.3.1),
// so catalog corruption genuinely degrades audit rules, as in the paper.
func (db *DB) CatalogFieldSpec(ti, fi int) (FieldSpec, error) {
	td, err := readTableDesc(db.region, ti)
	if err != nil {
		return FieldSpec{}, err
	}
	fd, err := readFieldDesc(db.region, td, fi)
	if err != nil {
		return FieldSpec{}, err
	}
	return FieldSpec{
		Kind:     fd.Kind,
		HasRange: fd.HasRange,
		Min:      fd.Min,
		Max:      fd.Max,
		Default:  fd.Default,
	}, nil
}

// --- Shadow metadata accessors ------------------------------------------

// Meta returns a copy of the redundant metadata for record ri of table ti.
func (db *DB) Meta(ti, ri int) (RecordMeta, error) {
	if !db.shadow.valid(ti, ri) {
		return RecordMeta{}, &BoundsError{What: "record", Index: ri, Limit: -1}
	}
	return db.shadow.records[ti][ri], nil
}

// Version returns the shadow version counter of record ri in table ti; the
// audit reads it before and after a check to detect intervening updates.
func (db *DB) Version(ti, ri int) uint64 {
	if !db.shadow.valid(ti, ri) {
		return 0
	}
	return db.shadow.records[ti][ri].Version
}

// TableStats returns a copy of table ti's activity counters.
func (db *DB) TableStats(ti int) TableStats {
	if ti < 0 || ti >= len(db.shadow.tables) {
		return TableStats{}
	}
	return db.shadow.tables[ti]
}

// NoteAuditError records an error detected in table ti for the prioritized
// trigger's error history.
func (db *DB) NoteAuditError(ti int) {
	if ti < 0 || ti >= len(db.shadow.tables) {
		return
	}
	db.shadow.tables[ti].ErrorsLast++
	db.shadow.tables[ti].ErrorsAll++
}

// EndAuditCycle rolls the per-cycle error counters, returning the totals of
// the finished cycle.
func (db *DB) EndAuditCycle() []uint64 {
	out := make([]uint64, len(db.shadow.tables))
	for i := range db.shadow.tables {
		out[i] = db.shadow.tables[i].ErrorsLast
		db.shadow.tables[i].ErrorsLast = 0
	}
	return out
}
