package memdb

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Database images. The target controller loads its entire database from
// disk into memory at startup (§3.1.2) and recovers static/structural
// damage by reloading from permanent storage. These helpers give the
// reproduction the same disk story: WriteImage persists the region,
// NewFromImage boots a database from it (the image becomes both the live
// region and the reload snapshot).
//
// Image format: magic "MDBI" u32 | length u32 | region bytes.
const imageMagic = 0x4D444249

// WriteImage persists the current region to w.
func (db *DB) WriteImage(w io.Writer) error {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], imageMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(db.region)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("memdb: write image header: %w", err)
	}
	if _, err := w.Write(db.region); err != nil {
		return fmt.Errorf("memdb: write image body: %w", err)
	}
	return nil
}

// NewFromImage boots a database for schema from a persisted image. The
// image must have been produced for the identical schema (the region
// length and catalog must match); the loaded bytes become both the live
// region and the permanent-storage snapshot used for reload recovery.
func NewFromImage(schema Schema, r io.Reader, opts ...Option) (*DB, error) {
	db, err := New(schema, opts...)
	if err != nil {
		return nil, err
	}
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("memdb: read image header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != imageMagic {
		return nil, fmt.Errorf("memdb: bad image magic %#x", binary.LittleEndian.Uint32(hdr[0:4]))
	}
	length := int(binary.LittleEndian.Uint32(hdr[4:8]))
	if length != len(db.region) {
		return nil, fmt.Errorf("memdb: image length %d does not match schema region %d",
			length, len(db.region))
	}
	if _, err := io.ReadFull(r, db.region); err != nil {
		return nil, fmt.Errorf("memdb: read image body: %w", err)
	}
	// Sanity: the image's catalog must decode for every table; a damaged
	// image is rejected at load, not discovered mid-operation.
	for ti := range schema.Tables {
		if _, err := readTableDesc(db.region, ti); err != nil {
			return nil, fmt.Errorf("memdb: image catalog invalid: %w", err)
		}
	}
	copy(db.snapshot, db.region)
	return db, nil
}
