package memdb

import "repro/internal/metrics"

// Metrics bridge. DB is single-writer: its shadow counters (TableStats,
// lock table, client map) are plain fields mutated only by the owning
// thread, so they cannot be read directly from a metrics snapshot taken on
// another goroutine. The bridge resolves that with a publish step: the
// owner thread calls RefreshMetrics at its own cadence (the network
// server's executor does it on every clock tick), copying the counters
// into atomic gauges that any snapshot may then read race-free.

// tableGauges is the published per-table activity state feeding the same
// signals the §4.4.1 prioritized trigger consumes: access frequency and
// error history.
type tableGauges struct {
	reads, writes *metrics.Gauge
	errorsLast    *metrics.Gauge
	errorsAll     *metrics.Gauge
}

// boundMetrics holds every gauge BindMetrics registered.
type boundMetrics struct {
	tables    []tableGauges
	locksHeld *metrics.Gauge
	clients   *metrics.Gauge
	guardViol *metrics.Gauge
}

// BindMetrics registers the database's observable state in reg under
// "memdb.": per-table read/write counters and audit error history
// ("memdb.table.<name>.reads" etc.), held lock count, connected client
// count, and concurrency-guard violations. The gauges update only when the
// owner thread calls RefreshMetrics. Binding twice replaces the previous
// binding.
func (db *DB) BindMetrics(reg *metrics.Registry) {
	bm := &boundMetrics{
		tables:    make([]tableGauges, len(db.schema.Tables)),
		locksHeld: reg.Gauge("memdb.locks.held"),
		clients:   reg.Gauge("memdb.clients"),
		guardViol: reg.Gauge("memdb.guard.violations"),
	}
	for i, t := range db.schema.Tables {
		p := "memdb.table." + t.Name
		bm.tables[i] = tableGauges{
			reads:      reg.Gauge(p + ".reads"),
			writes:     reg.Gauge(p + ".writes"),
			errorsLast: reg.Gauge(p + ".errors_last"),
			errorsAll:  reg.Gauge(p + ".errors_all"),
		}
	}
	db.metrics = bm
	db.RefreshMetrics()
}

// RefreshMetrics publishes the current shadow counters into the bound
// gauges. Owner thread only (the same serialization contract as every
// other DB method); a no-op when BindMetrics was never called.
func (db *DB) RefreshMetrics() {
	bm := db.metrics
	if bm == nil {
		return
	}
	db.FoldViewReads()
	for i := range bm.tables {
		st := db.shadow.tables[i]
		bm.tables[i].reads.Set(int64(st.Reads))
		bm.tables[i].writes.Set(int64(st.Writes))
		bm.tables[i].errorsLast.Set(int64(st.ErrorsLast))
		bm.tables[i].errorsAll.Set(int64(st.ErrorsAll))
	}
	held := 0
	for i := range db.locks {
		if db.locks[i].held {
			held++
		}
	}
	bm.locksHeld.Set(int64(held))
	bm.clients.Set(int64(len(db.clients)))
	bm.guardViol.Set(int64(db.GuardViolations()))
}
