package memdb

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Live-state snapshots. image.go persists and restores the pristine seed
// image only; checkpoints and replica bootstrap need the *current* region —
// active calls included — captured consistently. Because DB is single-writer,
// consistency is free as long as the snapshot is taken on the executor
// thread, which guardEnter enforces when the concurrency check is armed.
//
// Snapshot format: magic "MDBS" u32 | layout CRC u32 | length u32 | region.
// The layout CRC fingerprints the schema (CRC32 of the pristine catalog
// bytes), so a snapshot can never be restored into a database built for a
// different schema, even one with an identical region length.
const snapMagic = 0x4D444253 // "MDBS"

// snapHeaderSize is the fixed snapshot header length in bytes.
const snapHeaderSize = 12

// LayoutCRC returns the schema fingerprint embedded in live snapshots: the
// CRC32 of the pristine catalog extent.
func (db *DB) LayoutCRC() uint32 {
	e := db.CatalogExtent()
	return crc32.ChecksumIEEE(db.snapshot[e.Off : e.Off+e.Len])
}

// SnapshotInto serializes the current region — live state, not the pristine
// seed — to w. Must be called on the executor thread; the concurrency guard
// treats it like any other API entry.
func (db *DB) SnapshotInto(w io.Writer) error {
	defer db.guardEnter("SnapshotInto")()
	var hdr [snapHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], snapMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], db.LayoutCRC())
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(db.region)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("memdb: write snapshot header: %w", err)
	}
	if _, err := w.Write(db.region); err != nil {
		return fmt.Errorf("memdb: write snapshot body: %w", err)
	}
	return nil
}

// RestoreFrom replaces the live region with a snapshot previously produced
// by SnapshotInto on a database of the identical schema. The pristine seed
// snapshot is left untouched, so static-extent reload recovery keeps its
// ground truth. Every shadow record version is bumped, invalidating any
// in-flight audit of pre-restore state. Must be called on the executor
// thread. On error the region is unchanged.
func (db *DB) RestoreFrom(r io.Reader) error {
	defer db.guardEnter("RestoreFrom")()
	var hdr [snapHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return fmt.Errorf("memdb: read snapshot header: %w", err)
	}
	if m := binary.LittleEndian.Uint32(hdr[0:4]); m != snapMagic {
		return fmt.Errorf("memdb: bad snapshot magic %#x", m)
	}
	if c := binary.LittleEndian.Uint32(hdr[4:8]); c != db.LayoutCRC() {
		return fmt.Errorf("memdb: snapshot layout CRC %#x does not match schema %#x", c, db.LayoutCRC())
	}
	if n := int(binary.LittleEndian.Uint32(hdr[8:12])); n != len(db.region) {
		return fmt.Errorf("memdb: snapshot length %d does not match region %d", n, len(db.region))
	}
	// Stage into a scratch buffer so a short read cannot leave the region
	// half-replaced, and validate the catalog before committing.
	buf := make([]byte, len(db.region))
	if _, err := io.ReadFull(r, buf); err != nil {
		return fmt.Errorf("memdb: read snapshot body: %w", err)
	}
	for ti := range db.schema.Tables {
		if _, err := readTableDesc(buf, ti); err != nil {
			return fmt.Errorf("memdb: snapshot catalog invalid: %w", err)
		}
	}
	func() {
		defer db.mutate()()
		copy(db.region, buf)
	}()
	for ti := range db.shadow.records {
		for ri := range db.shadow.records[ti] {
			db.shadow.records[ti][ri].Version++
		}
	}
	return nil
}
