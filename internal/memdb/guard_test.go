package memdb

import "testing"

// guardDB builds a small database with one connected client and an
// allocated record to operate on.
func guardDB(t *testing.T) (*DB, *Client, int) {
	t.Helper()
	db, err := New(Schema{Tables: []TableSpec{{
		Name: "T", Dynamic: true, NumRecords: 8,
		Fields: []FieldSpec{
			{Name: "A", Kind: Dynamic, HasRange: true, Min: 0, Max: 1000},
			{Name: "B", Kind: Dynamic},
		},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	c, err := db.Connect()
	if err != nil {
		t.Fatal(err)
	}
	ri, err := c.Alloc(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	return db, c, ri
}

func TestGuardDetectsOverlappingAPICalls(t *testing.T) {
	db, c, ri := guardDB(t)
	var violated []string
	db.EnableConcurrencyCheck(func(op string) { violated = append(violated, op) })

	// Simulate an API call left in flight by another goroutine by holding
	// the busy flag directly, then enter the API on top of it — the
	// deterministic equivalent of a true interleaving, without racing the
	// region (which would trip the race detector on its own).
	release := db.guardEnter("DBwrite_rec")
	if _, err := c.ReadFld(0, ri, 0); err != nil {
		t.Fatalf("ReadFld during violation: %v", err)
	}
	if err := c.WriteFld(0, ri, 0, 7); err != nil {
		t.Fatalf("WriteFld during violation: %v", err)
	}
	release()

	if len(violated) != 2 {
		t.Fatalf("recorded %d violations (%v), want 2", len(violated), violated)
	}
	if violated[0] != "DBread_fld" || violated[1] != "DBwrite_fld" {
		t.Fatalf("violation ops = %v, want [DBread_fld DBwrite_fld]", violated)
	}
	if got := db.GuardViolations(); got != 2 {
		t.Fatalf("GuardViolations() = %d, want 2", got)
	}

	// With the flag released, calls are clean again.
	if _, err := c.ReadFld(0, ri, 0); err != nil {
		t.Fatal(err)
	}
	if len(violated) != 2 {
		t.Fatalf("clean call recorded a violation: %v", violated)
	}
}

func TestGuardPanicsWithoutHandler(t *testing.T) {
	db, c, ri := guardDB(t)
	db.EnableConcurrencyCheck(nil)
	release := db.guardEnter("DBwrite_rec")
	defer release()
	defer func() {
		if recover() == nil {
			t.Fatal("overlapping API call with nil handler did not panic")
		}
	}()
	_, _ = c.ReadFld(0, ri, 0)
}

func TestGuardDisabledIsInert(t *testing.T) {
	db, c, ri := guardDB(t)
	if got := db.GuardViolations(); got != 0 {
		t.Fatalf("violations on fresh DB = %d", got)
	}
	db.EnableConcurrencyCheck(func(string) { t.Fatal("violation while serialized") })
	for i := 0; i < 100; i++ {
		if err := c.WriteFld(0, ri, 0, uint32(i)); err != nil {
			t.Fatal(err)
		}
		if _, err := c.ReadRec(0, ri); err != nil {
			t.Fatal(err)
		}
	}
	db.DisableConcurrencyCheck()
	release := db.guardEnter("anything")
	release()
	if got := db.GuardViolations(); got != 0 {
		t.Fatalf("violations after disable = %d", got)
	}
}
