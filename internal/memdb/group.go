package memdb

import "fmt"

// Logical-group chains. Tables declaring Groups > 0 carry an on-region
// directory of chain heads; active records are singly linked through the
// header adjacency index (§3.1.2: header fields contain "record
// identifiers and indexes of logically adjacent records"). DBmove
// manipulates exactly this structure. Chains are redundant with the
// per-record group field, which is what makes corrupted links repairable:
// the directory and links can always be rebuilt from the group labels.

// ErrNoGroups is returned for group-chain operations on tables without a
// group directory.
var ErrNoGroups = fmt.Errorf("memdb: table has no group directory")

// groupCount returns the schema's directory size for table ti.
func (db *DB) groupCount(ti int) int {
	if ti < 0 || ti >= len(db.schema.Tables) {
		return 0
	}
	return db.schema.Tables[ti].Groups
}

// groupDirBase returns the region offset of table ti's directory.
func (db *DB) groupDirBase(ti int) (int, error) {
	if db.groupCount(ti) == 0 {
		return 0, fmt.Errorf("table %d: %w", ti, ErrNoGroups)
	}
	_, tableOffs, _ := layoutSize(db.schema)
	return tableOffs[ti], nil
}

// GroupDirExtent returns the byte range of table ti's chain directory.
func (db *DB) GroupDirExtent(ti int) (Extent, error) {
	base, err := db.groupDirBase(ti)
	if err != nil {
		return Extent{}, err
	}
	return Extent{
		Off:  base,
		Len:  groupDirSize(db.groupCount(ti)),
		Name: db.schema.Tables[ti].Name + ".groups",
	}, nil
}

// GroupHead returns the first record index of group g's chain, or -1 for
// an empty chain.
func (db *DB) GroupHead(ti, g int) (int, error) {
	base, err := db.groupDirBase(ti)
	if err != nil {
		return 0, err
	}
	if g < 0 || g >= db.groupCount(ti) {
		return 0, &BoundsError{What: "group", Index: g, Limit: db.groupCount(ti)}
	}
	h := int(getU16(db.region, base+2*g))
	if h == NilIndex {
		return -1, nil
	}
	return h, nil
}

// setGroupHead writes group g's chain head (NilIndex for empty).
func (db *DB) setGroupHead(ti, g, head int) error {
	base, err := db.groupDirBase(ti)
	if err != nil {
		return err
	}
	if g < 0 || g >= db.groupCount(ti) {
		return &BoundsError{What: "group", Index: g, Limit: db.groupCount(ti)}
	}
	putU16(db.region, base+2*g, uint16(head))
	return nil
}

// WalkGroup returns the record indexes on group g's chain in link order.
// The walk is bounded and cycle-guarded; a malformed chain returns what was
// reachable plus ok=false.
func (db *DB) WalkGroup(ti, g int) (records []int, ok bool, err error) {
	head, err := db.GroupHead(ti, g)
	if err != nil {
		return nil, false, err
	}
	n := db.schema.Tables[ti].NumRecords
	seen := make(map[int]bool, 8)
	cur := head
	for cur != -1 {
		if cur < 0 || cur >= n || seen[cur] {
			return records, false, nil
		}
		st, serr := db.StatusDirect(ti, cur)
		if serr != nil || st != StatusActive {
			return records, false, nil
		}
		off, oerr := db.TrueRecordOffset(ti, cur)
		if oerr != nil {
			return records, false, nil
		}
		h := decodeHeader(db.region, off)
		if h.GroupID != g {
			return records, false, nil
		}
		seen[cur] = true
		records = append(records, cur)
		if h.NextIdx == NilIndex {
			break
		}
		cur = h.NextIdx
	}
	return records, true, nil
}

// linkIntoGroup pushes record ri onto group g's chain head and stamps the
// record's group label.
func (db *DB) linkIntoGroup(ti, ri, g int) error {
	head, err := db.GroupHead(ti, g)
	if err != nil {
		return err
	}
	off, err := db.TrueRecordOffset(ti, ri)
	if err != nil {
		return err
	}
	putU16(db.region, off+4, uint16(g))
	next := NilIndex
	if head >= 0 {
		next = head
	}
	putU16(db.region, off+6, uint16(next))
	return db.setGroupHead(ti, g, ri)
}

// unlinkFromGroup removes record ri from its group chain (best effort: a
// record not actually on the chain, e.g. after link corruption, is left to
// the structural audit's rebuild).
func (db *DB) unlinkFromGroup(ti, ri int) error {
	off, err := db.TrueRecordOffset(ti, ri)
	if err != nil {
		return err
	}
	h := decodeHeader(db.region, off)
	g := h.GroupID
	if g < 0 || g >= db.groupCount(ti) {
		return nil // label out of range: nothing to unlink from
	}
	head, err := db.GroupHead(ti, g)
	if err != nil {
		return err
	}
	next := h.NextIdx
	nextVal := NilIndex
	if next != NilIndex {
		nextVal = next
	}
	if head == ri {
		if nextVal == NilIndex {
			return db.setGroupHead(ti, g, NilIndex)
		}
		return db.setGroupHead(ti, g, nextVal)
	}
	// Scan the chain for the predecessor, cycle-guarded.
	n := db.schema.Tables[ti].NumRecords
	cur := head
	for hops := 0; cur >= 0 && cur < n && hops <= n; hops++ {
		coff, err := db.TrueRecordOffset(ti, cur)
		if err != nil {
			return err
		}
		ch := decodeHeader(db.region, coff)
		if ch.NextIdx == ri {
			putU16(db.region, coff+6, uint16(nextVal))
			return nil
		}
		if ch.NextIdx == NilIndex {
			return nil // not on its chain: audit will rebuild
		}
		cur = ch.NextIdx
	}
	return nil
}

// GroupsConsistent verifies every chain of table ti: each chain must
// consist of active records carrying its group label, visited exactly
// once, and the union of all chains must cover every active record.
func (db *DB) GroupsConsistent(ti int) (bool, error) {
	groups := db.groupCount(ti)
	if groups == 0 {
		return true, fmt.Errorf("table %d: %w", ti, ErrNoGroups)
	}
	covered := make(map[int]bool)
	for g := 0; g < groups; g++ {
		records, ok, err := db.WalkGroup(ti, g)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
		for _, ri := range records {
			if covered[ri] {
				return false, nil // shared between chains
			}
			covered[ri] = true
		}
	}
	for ri := 0; ri < db.schema.Tables[ti].NumRecords; ri++ {
		st, err := db.StatusDirect(ti, ri)
		if err != nil {
			return false, err
		}
		if st == StatusActive && !covered[ri] {
			return false, nil // active record on no chain
		}
	}
	return true, nil
}

// RebuildGroups reconstructs table ti's directory and links from the
// redundant per-record group labels — the recovery for corrupted adjacency
// state. Records whose label is out of range are freed (their group
// membership is unrecoverable). Returns the number of records relinked.
func (db *DB) RebuildGroups(ti int) (int, error) {
	groups := db.groupCount(ti)
	if groups == 0 {
		return 0, fmt.Errorf("table %d: %w", ti, ErrNoGroups)
	}
	defer db.mutate()()
	for g := 0; g < groups; g++ {
		if err := db.setGroupHead(ti, g, NilIndex); err != nil {
			return 0, err
		}
	}
	relinked := 0
	n := db.schema.Tables[ti].NumRecords
	// Iterate high→low so chains end up in ascending index order.
	for ri := n - 1; ri >= 0; ri-- {
		st, err := db.StatusDirect(ti, ri)
		if err != nil || st != StatusActive {
			continue
		}
		off, err := db.TrueRecordOffset(ti, ri)
		if err != nil {
			continue
		}
		g := decodeHeader(db.region, off).GroupID
		if g < 0 || g >= groups {
			if err := db.freeRecordLocked(ti, ri); err != nil {
				return relinked, err
			}
			continue
		}
		if err := db.linkIntoGroup(ti, ri, g); err != nil {
			return relinked, err
		}
		relinked++
	}
	return relinked, nil
}
