package memdb

import "time"

// The framework adds redundancy "without modifying the original database
// structure" (§2, §4.3.3): per-record last-accessor identity, last-access
// time, and access counters live in shadow arrays alongside the region, and
// per-table counters feed prioritized audit triggering (§4.4.1).

// RecordMeta is the redundant data structure associated with each database
// record. The semantic audit uses LastPID to identify and terminate the
// client that owns a zombie record; the version counter lets audits detect
// intervening updates and invalidate their result (§4.3).
type RecordMeta struct {
	LastPID    int
	LastAccess time.Duration
	Reads      uint64
	Writes     uint64
	Version    uint64
}

// TableStats aggregates per-table activity and error history for
// prioritized audit triggering.
type TableStats struct {
	Reads      uint64
	Writes     uint64
	ErrorsLast uint64 // errors detected in the last audit cycle
	ErrorsAll  uint64 // errors detected since startup
}

// Accesses returns total reads+writes.
func (s TableStats) Accesses() uint64 { return s.Reads + s.Writes }

// shadow holds all per-record and per-table metadata.
type shadow struct {
	records [][]RecordMeta // [table][record]
	tables  []TableStats
}

func newShadow(s Schema) *shadow {
	sh := &shadow{
		records: make([][]RecordMeta, len(s.Tables)),
		tables:  make([]TableStats, len(s.Tables)),
	}
	for i, t := range s.Tables {
		sh.records[i] = make([]RecordMeta, t.NumRecords)
	}
	return sh
}

func (sh *shadow) noteRead(table, rec, pid int, now time.Duration) {
	if !sh.valid(table, rec) {
		return
	}
	m := &sh.records[table][rec]
	m.LastPID = pid
	m.LastAccess = now
	m.Reads++
	sh.tables[table].Reads++
}

func (sh *shadow) noteWrite(table, rec, pid int, now time.Duration) {
	if !sh.valid(table, rec) {
		return
	}
	m := &sh.records[table][rec]
	m.LastPID = pid
	m.LastAccess = now
	m.Writes++
	m.Version++
	sh.tables[table].Writes++
}

func (sh *shadow) valid(table, rec int) bool {
	return table >= 0 && table < len(sh.records) && rec >= 0 && rec < len(sh.records[table])
}
