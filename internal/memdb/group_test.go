package memdb

import (
	"errors"
	"testing"
	"testing/quick"
)

// chainedSchema is a table with an on-region logical-group directory.
func chainedSchema() Schema {
	return Schema{Tables: []TableSpec{
		{
			Name: "Channels", Dynamic: true, NumRecords: 16, Groups: 4,
			Fields: []FieldSpec{
				{Name: "Owner", Kind: Dynamic, HasRange: true, Min: 0, Max: 100, Default: 0},
				{Name: "Load", Kind: Dynamic, HasRange: true, Min: 0, Max: 10, Default: 0},
			},
		},
		{
			Name: "Plain", Dynamic: true, NumRecords: 4,
			Fields: []FieldSpec{{Name: "X", Kind: Dynamic}},
		},
	}}
}

func chainedDB(t *testing.T) (*DB, *Client) {
	t.Helper()
	db, err := New(chainedSchema())
	if err != nil {
		t.Fatal(err)
	}
	c, err := db.Connect()
	if err != nil {
		t.Fatal(err)
	}
	return db, c
}

func TestGroupSchemaValidation(t *testing.T) {
	s := chainedSchema()
	s.Tables[0].Groups = -1
	if err := s.Validate(); err == nil {
		t.Fatal("negative Groups accepted")
	}
	s.Tables[0].Groups = 1 << 17
	if err := s.Validate(); err == nil {
		t.Fatal("oversized Groups accepted")
	}
}

func TestAllocLinksIntoGroupChain(t *testing.T) {
	db, c := chainedDB(t)
	// Pristine: every chain empty.
	for g := 0; g < 4; g++ {
		head, err := db.GroupHead(0, g)
		if err != nil || head != -1 {
			t.Fatalf("pristine head(%d) = (%d,%v)", g, head, err)
		}
	}
	a, err := c.Alloc(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Alloc(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Newest at the head.
	records, ok, err := db.WalkGroup(0, 2)
	if err != nil || !ok {
		t.Fatalf("WalkGroup = (%v,%v,%v)", records, ok, err)
	}
	if len(records) != 2 || records[0] != b || records[1] != a {
		t.Fatalf("chain = %v, want [%d %d]", records, b, a)
	}
	consistent, err := db.GroupsConsistent(0)
	if err != nil || !consistent {
		t.Fatalf("GroupsConsistent = (%v,%v)", consistent, err)
	}
}

func TestAllocRejectsOutOfRangeGroup(t *testing.T) {
	_, c := chainedDB(t)
	var be *BoundsError
	if _, err := c.Alloc(0, 4); !errors.As(err, &be) {
		t.Fatalf("Alloc(group 4) = %v, want BoundsError", err)
	}
	if _, err := c.Alloc(0, -1); !errors.As(err, &be) {
		t.Fatalf("Alloc(group -1) = %v, want BoundsError", err)
	}
}

func TestFreeUnlinksFromChain(t *testing.T) {
	db, c := chainedDB(t)
	a, _ := c.Alloc(0, 1)
	b, _ := c.Alloc(0, 1)
	d, _ := c.Alloc(0, 1)
	// Chain head→tail: d, b, a. Remove the middle.
	if err := c.Free(0, b); err != nil {
		t.Fatal(err)
	}
	records, ok, _ := db.WalkGroup(0, 1)
	if !ok || len(records) != 2 || records[0] != d || records[1] != a {
		t.Fatalf("chain after middle free = %v", records)
	}
	// Remove the head.
	if err := c.Free(0, d); err != nil {
		t.Fatal(err)
	}
	records, ok, _ = db.WalkGroup(0, 1)
	if !ok || len(records) != 1 || records[0] != a {
		t.Fatalf("chain after head free = %v", records)
	}
	// Remove the last.
	if err := c.Free(0, a); err != nil {
		t.Fatal(err)
	}
	records, ok, _ = db.WalkGroup(0, 1)
	if !ok || len(records) != 0 {
		t.Fatalf("chain after all frees = %v", records)
	}
}

func TestMoveRelinksBetweenChains(t *testing.T) {
	db, c := chainedDB(t)
	a, _ := c.Alloc(0, 0)
	b, _ := c.Alloc(0, 0)
	if err := c.Move(0, a, 3); err != nil {
		t.Fatal(err)
	}
	g0, ok0, _ := db.WalkGroup(0, 0)
	g3, ok3, _ := db.WalkGroup(0, 3)
	if !ok0 || !ok3 {
		t.Fatalf("chains inconsistent after move")
	}
	if len(g0) != 1 || g0[0] != b {
		t.Fatalf("group 0 = %v, want [%d]", g0, b)
	}
	if len(g3) != 1 || g3[0] != a {
		t.Fatalf("group 3 = %v, want [%d]", g3, a)
	}
	var be *BoundsError
	if err := c.Move(0, a, 9); !errors.As(err, &be) {
		t.Fatalf("Move to group 9 = %v, want BoundsError", err)
	}
}

func TestFreeRecordDirectUnlinks(t *testing.T) {
	db, c := chainedDB(t)
	a, _ := c.Alloc(0, 1)
	b, _ := c.Alloc(0, 1)
	if err := db.FreeRecordDirect(0, b); err != nil {
		t.Fatal(err)
	}
	records, ok, _ := db.WalkGroup(0, 1)
	if !ok || len(records) != 1 || records[0] != a {
		t.Fatalf("chain after direct free = %v (ok=%v)", records, ok)
	}
	consistent, _ := db.GroupsConsistent(0)
	if !consistent {
		t.Fatal("chains inconsistent after direct free")
	}
}

func TestGroupOpsOnPlainTable(t *testing.T) {
	db, c := chainedDB(t)
	// Table 1 has no directory: group APIs refuse, labels still work.
	if _, err := db.GroupHead(1, 0); !errors.Is(err, ErrNoGroups) {
		t.Fatalf("GroupHead on plain table = %v", err)
	}
	if _, _, err := db.WalkGroup(1, 0); !errors.Is(err, ErrNoGroups) {
		t.Fatalf("WalkGroup on plain table = %v", err)
	}
	if _, err := db.RebuildGroups(1); !errors.Is(err, ErrNoGroups) {
		t.Fatalf("RebuildGroups on plain table = %v", err)
	}
	ri, err := c.Alloc(1, 7) // plain label, any value
	if err != nil {
		t.Fatal(err)
	}
	off, _ := db.TrueRecordOffset(1, ri)
	if h := db.HeaderAt(off); h.GroupID != 7 {
		t.Fatalf("plain group label = %d", h.GroupID)
	}
}

func TestGroupsConsistentDetectsDamage(t *testing.T) {
	corruptions := []struct {
		name string
		do   func(db *DB, recs []int)
	}{
		{"broken link", func(db *DB, recs []int) {
			off, _ := db.TrueRecordOffset(0, recs[2])
			putU16(db.Raw(), off+6, 9999)
		}},
		{"cycle", func(db *DB, recs []int) {
			off, _ := db.TrueRecordOffset(0, recs[0])
			putU16(db.Raw(), off+6, uint16(recs[2]))
		}},
		{"corrupt head", func(db *DB, recs []int) {
			base, _ := db.groupDirBase(0)
			putU16(db.Raw(), base+2*1, 200)
		}},
		{"label mismatch", func(db *DB, recs []int) {
			off, _ := db.TrueRecordOffset(0, recs[1])
			putU16(db.Raw(), off+4, 3)
		}},
		{"orphan active record", func(db *DB, recs []int) {
			// Activate a record behind the chains' back.
			off, _ := db.TrueRecordOffset(0, 10)
			db.Raw()[off+1] = StatusActive
		}},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			db, c := chainedDB(t)
			var recs []int
			for i := 0; i < 3; i++ {
				ri, err := c.Alloc(0, 1)
				if err != nil {
					t.Fatal(err)
				}
				recs = append(recs, ri)
			}
			tc.do(db, recs)
			consistent, err := db.GroupsConsistent(0)
			if err != nil {
				t.Fatal(err)
			}
			if consistent {
				t.Fatal("damage not detected")
			}
			// Rebuild restores consistency from the group labels.
			if _, err := db.RebuildGroups(0); err != nil {
				t.Fatal(err)
			}
			consistent, err = db.GroupsConsistent(0)
			if err != nil || !consistent {
				t.Fatalf("rebuild did not restore consistency: (%v,%v)", consistent, err)
			}
		})
	}
}

func TestRebuildFreesUnrecoverableLabels(t *testing.T) {
	db, c := chainedDB(t)
	ri, _ := c.Alloc(0, 1)
	// Group label beyond the directory: membership unrecoverable.
	off, _ := db.TrueRecordOffset(0, ri)
	putU16(db.Raw(), off+4, 999)
	if _, err := db.RebuildGroups(0); err != nil {
		t.Fatal(err)
	}
	st, _ := db.StatusDirect(0, ri)
	if st != StatusFree {
		t.Fatal("record with unrecoverable label not freed")
	}
}

// Property: any random sequence of alloc/free/move operations leaves the
// chains consistent, and walking every group yields exactly the active
// records of each label.
func TestPropertyChainOpsStayConsistent(t *testing.T) {
	f := func(ops []uint16) bool {
		db, err := New(chainedSchema())
		if err != nil {
			return false
		}
		c, err := db.Connect()
		if err != nil {
			return false
		}
		var live []int
		for _, op := range ops {
			kind := op % 3
			g := int(op/3) % 4
			switch {
			case kind == 0 || len(live) == 0:
				if ri, err := c.Alloc(0, g); err == nil {
					live = append(live, ri)
				}
			case kind == 1:
				k := int(op/16) % len(live)
				if err := c.Free(0, live[k]); err != nil {
					return false
				}
				live = append(live[:k], live[k+1:]...)
			default:
				k := int(op/16) % len(live)
				if err := c.Move(0, live[k], g); err != nil {
					return false
				}
			}
		}
		consistent, err := db.GroupsConsistent(0)
		if err != nil || !consistent {
			return false
		}
		// Chains cover exactly the live records.
		total := 0
		for g := 0; g < 4; g++ {
			records, ok, err := db.WalkGroup(0, g)
			if err != nil || !ok {
				return false
			}
			total += len(records)
		}
		return total == len(live)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
