package memdb

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestLayoutTablesAreContiguousAndAligned(t *testing.T) {
	s := testSchema()
	total, tableOffs, _ := layoutSize(s)
	if tableOffs[0]%64 != 0 {
		t.Fatalf("first table offset %d not 64-byte aligned", tableOffs[0])
	}
	prevEnd := tableOffs[0]
	for i, tbl := range s.Tables {
		if tableOffs[i] != prevEnd {
			t.Fatalf("table %d starts at %d, want contiguous %d", i, tableOffs[i], prevEnd)
		}
		recSize := RecordHeaderSize + FieldSize*len(tbl.Fields)
		prevEnd += recSize * tbl.NumRecords
	}
	if total != prevEnd {
		t.Fatalf("total size %d, want %d", total, prevEnd)
	}
}

func TestCatalogRoundTrip(t *testing.T) {
	db := mustDB(t)
	region := db.Raw()
	n, err := readCatalogHeader(region)
	if err != nil {
		t.Fatalf("readCatalogHeader: %v", err)
	}
	if n != len(testSchema().Tables) {
		t.Fatalf("numTables = %d, want %d", n, len(testSchema().Tables))
	}
	for ti, tbl := range testSchema().Tables {
		td, err := readTableDesc(region, ti)
		if err != nil {
			t.Fatalf("readTableDesc(%d): %v", ti, err)
		}
		if td.ID != ti {
			t.Errorf("table %d: ID = %d", ti, td.ID)
		}
		if td.Dynamic != tbl.Dynamic {
			t.Errorf("table %d: Dynamic = %v, want %v", ti, td.Dynamic, tbl.Dynamic)
		}
		if td.NumRecords != tbl.NumRecords {
			t.Errorf("table %d: NumRecords = %d, want %d", ti, td.NumRecords, tbl.NumRecords)
		}
		if td.NumFields != len(tbl.Fields) {
			t.Errorf("table %d: NumFields = %d, want %d", ti, td.NumFields, len(tbl.Fields))
		}
		for fi, f := range tbl.Fields {
			fd, err := readFieldDesc(region, td, fi)
			if err != nil {
				t.Fatalf("readFieldDesc(%d,%d): %v", ti, fi, err)
			}
			if fd.Kind != f.Kind || fd.HasRange != f.HasRange ||
				fd.Min != f.Min || fd.Max != f.Max || fd.Default != f.Default {
				t.Errorf("table %d field %d: %+v vs spec %+v", ti, fi, fd, f)
			}
		}
	}
}

func TestPristineHeaders(t *testing.T) {
	db := mustDB(t)
	for ti, tbl := range db.Schema().Tables {
		for ri := 0; ri < tbl.NumRecords; ri++ {
			off, err := db.TrueRecordOffset(ti, ri)
			if err != nil {
				t.Fatalf("TrueRecordOffset(%d,%d): %v", ti, ri, err)
			}
			h := db.HeaderAt(off)
			if h.TableID != ti || h.RecordID != ri {
				t.Fatalf("header at (%d,%d) = %+v", ti, ri, h)
			}
			if h.Status != StatusFree {
				t.Fatalf("pristine record (%d,%d) not free: %+v", ti, ri, h)
			}
			if h.NextIdx != NilIndex {
				t.Fatalf("pristine record (%d,%d) has link %d", ti, ri, h.NextIdx)
			}
		}
	}
}

func TestCorruptMagicFailsOperations(t *testing.T) {
	db := mustDB(t)
	c := mustClient(t, db)
	db.Raw()[0] ^= 0xFF
	_, err := c.ReadRec(1, 0)
	if !errors.Is(err, ErrCorruptCatalog) {
		t.Fatalf("ReadRec with corrupt magic: %v, want ErrCorruptCatalog", err)
	}
}

func TestCorruptDescriptorOffsetDetected(t *testing.T) {
	db := mustDB(t)
	// Blast table 1's offset field far beyond the region.
	d := catalogHdrSize + tableDescSize*1
	putU32(db.Raw(), d+8, 0x7FFFFFFF)
	_, err := readTableDesc(db.Raw(), 1)
	if !errors.Is(err, ErrCorruptCatalog) {
		t.Fatalf("readTableDesc with wild offset: %v, want ErrCorruptCatalog", err)
	}
}

func TestCorruptRecordSizeDetected(t *testing.T) {
	db := mustDB(t)
	d := catalogHdrSize + tableDescSize*1
	putU16(db.Raw(), d+6, 9999)
	_, err := readTableDesc(db.Raw(), 1)
	if !errors.Is(err, ErrCorruptCatalog) {
		t.Fatalf("readTableDesc with bad record size: %v, want ErrCorruptCatalog", err)
	}
}

func TestTableIndexOutOfRange(t *testing.T) {
	db := mustDB(t)
	var be *BoundsError
	_, err := readTableDesc(db.Raw(), 99)
	if !errors.As(err, &be) {
		t.Fatalf("readTableDesc(99): %v, want BoundsError", err)
	}
	_, err = readTableDesc(db.Raw(), -1)
	if !errors.As(err, &be) {
		t.Fatalf("readTableDesc(-1): %v, want BoundsError", err)
	}
}

func TestBoundsErrorMessage(t *testing.T) {
	e := &BoundsError{What: "record", Index: 12, Limit: 8}
	want := "memdb: record index 12 out of range (limit 8)"
	if e.Error() != want {
		t.Fatalf("Error() = %q, want %q", e.Error(), want)
	}
}

// Property: for any (small) valid schema shape, every record offset
// computed from the schema matches the offset derived through the
// on-region catalog, and all records fall inside the region.
func TestPropertyLayoutOffsetsConsistent(t *testing.T) {
	f := func(nRecA, nRecB, nFldA, nFldB uint8) bool {
		ra := int(nRecA%30) + 1
		rb := int(nRecB%30) + 1
		fa := int(nFldA%6) + 1
		fb := int(nFldB%6) + 1
		s := Schema{Tables: []TableSpec{
			{Name: "A", NumRecords: ra, Fields: make([]FieldSpec, fa)},
			{Name: "B", Dynamic: true, NumRecords: rb, Fields: make([]FieldSpec, fb)},
		}}
		for i := range s.Tables[0].Fields {
			s.Tables[0].Fields[i] = FieldSpec{Name: string(rune('a' + i)), Kind: Static}
		}
		for i := range s.Tables[1].Fields {
			s.Tables[1].Fields[i] = FieldSpec{Name: string(rune('a' + i)), Kind: Dynamic}
		}
		db, err := New(s)
		if err != nil {
			return false
		}
		for ti, tbl := range s.Tables {
			td, err := readTableDesc(db.Raw(), ti)
			if err != nil {
				return false
			}
			for ri := 0; ri < tbl.NumRecords; ri++ {
				trueOff, err := db.TrueRecordOffset(ti, ri)
				if err != nil {
					return false
				}
				catOff, err := recordOffset(db.Raw(), td, ri)
				if err != nil {
					return false
				}
				if trueOff != catOff {
					return false
				}
				if trueOff+td.RecordSize > db.Size() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
