package memdb

import (
	"fmt"
)

// On-region layout.
//
// The region begins with the system catalog, followed by each table's
// record array, exactly as §3.1.2 describes ("various tables with a
// pre-defined size that occupy the memory space one after another").
//
//	offset 0:  catalog header (8 bytes)
//	           magic      u32  = catalogMagic
//	           numTables  u16
//	           reserved   u16
//	then:      table descriptors, 20 bytes each
//	           tableID    u8
//	           flags      u8   (bit 0: dynamic)
//	           numRecords u16
//	           numFields  u16
//	           recordSize u16
//	           offset     u32  (table start, from region base)
//	           fieldOff   u32  (this table's field-descriptor block)
//	           numGroups  u16  (logical-group directory slots)
//	           reserved   u16
//	then:      field descriptors, 16 bytes each, grouped by table
//	           kind       u8
//	           hasRange   u8
//	           reserved   u16
//	           min        u32
//	           max        u32
//	           default    u32
//	then:      table areas: an optional logical-group directory (numGroups
//	           × u16 chain heads, padded to 8 bytes) followed by the
//	           record array, each record:
//	           header (8 bytes): tableID u8, status u8, recordID u16,
//	                             groupID u16, nextIdx u16
//	           fields: numFields × u32
//
// Every descriptor the API needs per operation is re-read from the region,
// so catalog corruption genuinely degrades operations as the paper warns.
const (
	catalogMagic   = 0x4D444232 // "MDB2"
	catalogHdrSize = 8
	tableDescSize  = 20
	fieldDescSize  = 16

	// RecordHeaderSize is the per-record header length in bytes.
	RecordHeaderSize = 8

	// FieldSize is the on-region size of every data field.
	FieldSize = 4

	// StatusFree and StatusActive are record header status values.
	StatusFree   = 0
	StatusActive = 1

	// NilIndex marks "no next record" in the header group link.
	NilIndex = 0xFFFF
)

// tableDesc is a decoded table descriptor.
type tableDesc struct {
	ID         int
	Dynamic    bool
	NumRecords int
	NumFields  int
	RecordSize int
	Offset     int
	FieldOff   int
	NumGroups  int
}

// groupDirSize is the byte length of a table's logical-group directory
// (chain heads), padded to keep records 8-byte aligned.
func groupDirSize(numGroups int) int {
	if numGroups <= 0 {
		return 0
	}
	return (2*numGroups + 7) &^ 7
}

// fieldDesc is a decoded field descriptor.
type fieldDesc struct {
	Kind     FieldKind
	HasRange bool
	Min      uint32
	Max      uint32
	Default  uint32
}

// layoutSize computes the region size and per-table offsets for a schema.
func layoutSize(s Schema) (total int, tableOffsets, fieldOffsets []int) {
	totalFields := 0
	for _, t := range s.Tables {
		totalFields += len(t.Fields)
	}
	catSize := catalogHdrSize + tableDescSize*len(s.Tables) + fieldDescSize*totalFields
	// Round the catalog to a 64-byte boundary so table starts are aligned.
	catSize = (catSize + 63) &^ 63

	tableOffsets = make([]int, len(s.Tables))
	fieldOffsets = make([]int, len(s.Tables))
	fieldOff := catalogHdrSize + tableDescSize*len(s.Tables)
	dataOff := catSize
	for i, t := range s.Tables {
		fieldOffsets[i] = fieldOff
		fieldOff += fieldDescSize * len(t.Fields)
		tableOffsets[i] = dataOff
		recSize := RecordHeaderSize + FieldSize*len(t.Fields)
		dataOff += groupDirSize(t.Groups) + recSize*t.NumRecords
	}
	return dataOff, tableOffsets, fieldOffsets
}

// writeCatalog serializes the schema's catalog into region and formats
// every record header to its pristine state.
func writeCatalog(region []byte, s Schema, tableOffsets, fieldOffsets []int) {
	putU32(region, 0, catalogMagic)
	putU16(region, 4, uint16(len(s.Tables)))
	putU16(region, 6, 0)
	for i, t := range s.Tables {
		d := catalogHdrSize + tableDescSize*i
		region[d] = uint8(i)
		var flags uint8
		if t.Dynamic {
			flags |= 1
		}
		region[d+1] = flags
		putU16(region, d+2, uint16(t.NumRecords))
		putU16(region, d+4, uint16(len(t.Fields)))
		recSize := RecordHeaderSize + FieldSize*len(t.Fields)
		putU16(region, d+6, uint16(recSize))
		putU32(region, d+8, uint32(tableOffsets[i]))
		putU32(region, d+12, uint32(fieldOffsets[i]))
		putU16(region, d+16, uint16(t.Groups))
		putU16(region, d+18, 0)

		for fi, f := range t.Fields {
			fo := fieldOffsets[i] + fieldDescSize*fi
			region[fo] = uint8(f.Kind)
			if f.HasRange {
				region[fo+1] = 1
			} else {
				region[fo+1] = 0
			}
			putU16(region, fo+2, 0)
			putU32(region, fo+4, f.Min)
			putU32(region, fo+8, f.Max)
			putU32(region, fo+12, f.Default)
		}

		// Group-chain heads start empty.
		for g := 0; g < t.Groups; g++ {
			putU16(region, tableOffsets[i]+2*g, NilIndex)
		}
		recBase := tableOffsets[i] + groupDirSize(t.Groups)
		for r := 0; r < t.NumRecords; r++ {
			h := recBase + recSize*r
			formatHeader(region, h, i, r)
			for fi, f := range t.Fields {
				putU32(region, h+RecordHeaderSize+FieldSize*fi, f.Default)
			}
		}
	}
}

// formatHeader writes a pristine free-record header at offset h.
func formatHeader(region []byte, h, tableID, recordID int) {
	region[h] = uint8(tableID)
	region[h+1] = StatusFree
	putU16(region, h+2, uint16(recordID))
	putU16(region, h+4, 0)        // groupID
	putU16(region, h+6, NilIndex) // nextIdx
}

// readCatalogHeader validates the catalog magic and returns the table count.
func readCatalogHeader(region []byte) (numTables int, err error) {
	if len(region) < catalogHdrSize {
		return 0, ErrCorruptCatalog
	}
	if getU32(region, 0) != catalogMagic {
		return 0, ErrCorruptCatalog
	}
	return int(getU16(region, 4)), nil
}

// readTableDesc decodes and bounds-validates table descriptor ti from the
// region. Validation failures surface as ErrCorruptCatalog-wrapped errors:
// a corrupted descriptor must make the operation fail, not the process.
func readTableDesc(region []byte, ti int) (tableDesc, error) {
	numTables, err := readCatalogHeader(region)
	if err != nil {
		return tableDesc{}, err
	}
	if ti < 0 || ti >= numTables {
		return tableDesc{}, &BoundsError{What: "table", Index: ti, Limit: numTables}
	}
	d := catalogHdrSize + tableDescSize*ti
	if d+tableDescSize > len(region) {
		return tableDesc{}, fmt.Errorf("descriptor %d beyond region: %w", ti, ErrCorruptCatalog)
	}
	td := tableDesc{
		ID:         int(region[d]),
		Dynamic:    region[d+1]&1 != 0,
		NumRecords: int(getU16(region, d+2)),
		NumFields:  int(getU16(region, d+4)),
		RecordSize: int(getU16(region, d+6)),
		Offset:     int(getU32(region, d+8)),
		FieldOff:   int(getU32(region, d+12)),
		NumGroups:  int(getU16(region, d+16)),
	}
	if td.RecordSize != RecordHeaderSize+FieldSize*td.NumFields {
		return tableDesc{}, fmt.Errorf("table %d record size %d inconsistent with %d fields: %w",
			ti, td.RecordSize, td.NumFields, ErrCorruptCatalog)
	}
	end := td.Offset + groupDirSize(td.NumGroups) + td.RecordSize*td.NumRecords
	if td.Offset < 0 || end > len(region) || end < td.Offset {
		return tableDesc{}, fmt.Errorf("table %d extent [%d,%d) beyond region: %w",
			ti, td.Offset, end, ErrCorruptCatalog)
	}
	fend := td.FieldOff + fieldDescSize*td.NumFields
	if td.FieldOff < 0 || fend > len(region) || fend < td.FieldOff {
		return tableDesc{}, fmt.Errorf("table %d field descriptors beyond region: %w", ti, ErrCorruptCatalog)
	}
	return td, nil
}

// readFieldDesc decodes field descriptor fi of table td.
func readFieldDesc(region []byte, td tableDesc, fi int) (fieldDesc, error) {
	if fi < 0 || fi >= td.NumFields {
		return fieldDesc{}, &BoundsError{What: "field", Index: fi, Limit: td.NumFields}
	}
	fo := td.FieldOff + fieldDescSize*fi
	return fieldDesc{
		Kind:     FieldKind(region[fo]),
		HasRange: region[fo+1] != 0,
		Min:      getU32(region, fo+4),
		Max:      getU32(region, fo+8),
		Default:  getU32(region, fo+12),
	}, nil
}

// recordOffset computes the region offset of record ri in table td,
// validating bounds against the (possibly corrupted) descriptor.
func recordOffset(region []byte, td tableDesc, ri int) (int, error) {
	if ri < 0 || ri >= td.NumRecords {
		return 0, &BoundsError{What: "record", Index: ri, Limit: td.NumRecords}
	}
	off := td.Offset + groupDirSize(td.NumGroups) + td.RecordSize*ri
	if off < 0 || off+td.RecordSize > len(region) {
		return 0, fmt.Errorf("record %d offset %d beyond region: %w", ri, off, ErrCorruptCatalog)
	}
	return off, nil
}

// Header is a decoded record header.
type Header struct {
	TableID  int
	Status   int
	RecordID int
	GroupID  int
	NextIdx  int
}

// decodeHeader reads the record header at offset h.
func decodeHeader(region []byte, h int) Header {
	return Header{
		TableID:  int(region[h]),
		Status:   int(region[h+1]),
		RecordID: int(getU16(region, h+2)),
		GroupID:  int(getU16(region, h+4)),
		NextIdx:  int(getU16(region, h+6)),
	}
}
