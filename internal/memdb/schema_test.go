package memdb

import "testing"

// testSchema is a miniature of the controller database: one static config
// table and the three dynamic tables forming the paper's semantic loop.
func testSchema() Schema {
	return Schema{Tables: []TableSpec{
		{
			Name:       "SysConfig",
			Dynamic:    false,
			NumRecords: 4,
			Fields: []FieldSpec{
				{Name: "NumCPUs", Kind: Static, HasRange: true, Min: 1, Max: 64, Default: 2},
				{Name: "MaxCalls", Kind: Static, HasRange: true, Min: 1, Max: 10000, Default: 100},
			},
		},
		{
			Name:       "Process",
			Dynamic:    true,
			NumRecords: 8,
			Fields: []FieldSpec{
				{Name: "ConnID", Kind: Dynamic, HasRange: true, Min: 0, Max: 7, Default: 0},
				{Name: "Status", Kind: Dynamic, HasRange: true, Min: 0, Max: 3, Default: 0},
			},
		},
		{
			Name:       "Connection",
			Dynamic:    true,
			NumRecords: 8,
			Fields: []FieldSpec{
				{Name: "ChannelID", Kind: Dynamic, HasRange: true, Min: 0, Max: 7, Default: 0},
				{Name: "CallerID", Kind: Dynamic},
				{Name: "State", Kind: Dynamic, HasRange: true, Min: 0, Max: 4, Default: 0},
			},
		},
		{
			Name:       "Resource",
			Dynamic:    true,
			NumRecords: 8,
			Fields: []FieldSpec{
				{Name: "ProcID", Kind: Dynamic, HasRange: true, Min: 0, Max: 7, Default: 0},
				{Name: "Status", Kind: Dynamic, HasRange: true, Min: 0, Max: 2, Default: 0},
			},
		},
	}}
}

func mustDB(t *testing.T, opts ...Option) *DB {
	t.Helper()
	db, err := New(testSchema(), opts...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return db
}

func mustClient(t *testing.T, db *DB) *Client {
	t.Helper()
	c, err := db.Connect()
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	return c
}

func TestSchemaValidateAcceptsGood(t *testing.T) {
	if err := testSchema().Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestSchemaValidateRejections(t *testing.T) {
	good := func() Schema { return testSchema() }
	tests := []struct {
		name   string
		mutate func(*Schema)
	}{
		{"no tables", func(s *Schema) { s.Tables = nil }},
		{"empty table name", func(s *Schema) { s.Tables[0].Name = "" }},
		{"duplicate table name", func(s *Schema) { s.Tables[1].Name = s.Tables[0].Name }},
		{"zero records", func(s *Schema) { s.Tables[0].NumRecords = 0 }},
		{"too many records", func(s *Schema) { s.Tables[0].NumRecords = 0xFFFF }},
		{"no fields", func(s *Schema) { s.Tables[0].Fields = nil }},
		{"empty field name", func(s *Schema) { s.Tables[0].Fields[0].Name = "" }},
		{"duplicate field name", func(s *Schema) {
			s.Tables[0].Fields[1].Name = s.Tables[0].Fields[0].Name
		}},
		{"bad field kind", func(s *Schema) { s.Tables[0].Fields[0].Kind = 0 }},
		{"min above max", func(s *Schema) {
			s.Tables[0].Fields[0].Min = 10
			s.Tables[0].Fields[0].Max = 1
		}},
		{"default outside range", func(s *Schema) { s.Tables[0].Fields[0].Default = 9999 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := good()
			tt.mutate(&s)
			if err := s.Validate(); err == nil {
				t.Fatalf("Validate accepted schema with %s", tt.name)
			}
		})
	}
}

func TestSchemaLookups(t *testing.T) {
	s := testSchema()
	if got := s.TableIndex("Connection"); got != 2 {
		t.Fatalf("TableIndex(Connection) = %d, want 2", got)
	}
	if got := s.TableIndex("Nope"); got != -1 {
		t.Fatalf("TableIndex(Nope) = %d, want -1", got)
	}
	if got := s.FieldIndex(2, "CallerID"); got != 1 {
		t.Fatalf("FieldIndex = %d, want 1", got)
	}
	if got := s.FieldIndex(2, "Nope"); got != -1 {
		t.Fatalf("FieldIndex(Nope) = %d, want -1", got)
	}
	if got := s.FieldIndex(99, "CallerID"); got != -1 {
		t.Fatalf("FieldIndex(bad table) = %d, want -1", got)
	}
}

func TestFieldKindString(t *testing.T) {
	if Static.String() != "static" || Dynamic.String() != "dynamic" || FieldKind(9).String() != "unknown" {
		t.Fatal("FieldKind.String mismatch")
	}
}
