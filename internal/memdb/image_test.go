package memdb

import (
	"bytes"
	"testing"
)

func TestImageRoundTrip(t *testing.T) {
	db := mustDB(t)
	c := mustClient(t, db)
	ri, err := c.Alloc(tblConn, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WriteRec(tblConn, ri, []uint32{1, 777, 2}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := db.WriteImage(&buf); err != nil {
		t.Fatal(err)
	}

	db2, err := NewFromImage(testSchema(), &buf)
	if err != nil {
		t.Fatalf("NewFromImage: %v", err)
	}
	if !bytes.Equal(db.Raw(), db2.Raw()) {
		t.Fatal("loaded region differs from persisted region")
	}
	// Live state survived: record active with its data.
	st, _ := db2.StatusDirect(tblConn, ri)
	if st != StatusActive {
		t.Fatal("allocated record not active after load")
	}
	v, _ := db2.ReadFieldDirect(tblConn, ri, 1)
	if v != 777 {
		t.Fatalf("field after load = %d", v)
	}
	// The loaded image is the reload baseline: corrupt and reload.
	off, _ := db2.TrueRecordOffset(tblConn, ri)
	db2.Raw()[off+RecordHeaderSize+4] ^= 0xFF
	if err := db2.ReloadExtent(off, RecordHeaderSize+FieldSize*3); err != nil {
		t.Fatal(err)
	}
	v, _ = db2.ReadFieldDirect(tblConn, ri, 1)
	if v != 777 {
		t.Fatalf("reload restored %d, want the image value 777", v)
	}
}

func TestImageRejectsMismatches(t *testing.T) {
	db := mustDB(t)
	var buf bytes.Buffer
	if err := db.WriteImage(&buf); err != nil {
		t.Fatal(err)
	}
	// Wrong schema (different region size).
	small := testSchema()
	small.Tables[0].NumRecords = 1
	if _, err := NewFromImage(small, bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("image accepted under a mismatching schema")
	}
	// Bad magic.
	raw := append([]byte(nil), buf.Bytes()...)
	raw[0] ^= 0xFF
	if _, err := NewFromImage(testSchema(), bytes.NewReader(raw)); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Truncated body.
	if _, err := NewFromImage(testSchema(), bytes.NewReader(buf.Bytes()[:20])); err == nil {
		t.Fatal("truncated image accepted")
	}
	// Corrupted on-disk catalog rejected at load.
	raw = append([]byte(nil), buf.Bytes()...)
	raw[8] ^= 0xFF // first region byte: catalog magic
	if _, err := NewFromImage(testSchema(), bytes.NewReader(raw)); err == nil {
		t.Fatal("image with damaged catalog accepted")
	}
}
