package memdb

// Shard partitioning: the region is split into N independent databases by
// striping record IDs — global record g of every table lives on shard
// g mod N, at local index g div N. Striping (rather than contiguous range
// splits) keeps any dense or sequential client allocation pattern spread
// evenly across shards, and the mapping needs no per-table state: it is
// the same arithmetic for every table.
//
// Each shard is a full memdb.DB over a derived schema: identical table
// order, names, field specs, and group counts, with only NumRecords cut to
// the shard's stripe. Identical table IDs and catalogs mean every audit
// technique, the WAL replayer, and the read view work per shard unchanged.
// Group chains stay shard-local: a record allocated into group g on shard
// k is chained through shard k's group directory only, so DBmove and the
// structural audit never cross a shard boundary.

import "fmt"

// ShardOf returns the shard owning global record index g in an n-way
// striped partition.
func ShardOf(g, n int) int {
	if n <= 1 {
		return 0
	}
	return g % n
}

// LocalIndex translates global record index g to its index within the
// owning shard's table.
func LocalIndex(g, n int) int {
	if n <= 1 {
		return g
	}
	return g / n
}

// GlobalIndex translates shard k's local record index l back to the global
// record index.
func GlobalIndex(l, k, n int) int {
	if n <= 1 {
		return l
	}
	return l*n + k
}

// ShardRecords returns how many of a table's total records land on shard k
// of n: the count of g in [0, total) with g mod n == k.
func ShardRecords(total, k, n int) int {
	if n <= 1 {
		return total
	}
	return (total - k + n - 1) / n
}

// ShardSchemas derives the n per-shard schemas of a striped partition of
// schema. Every table must have at least n records so no shard's table is
// empty (memdb rejects zero-record tables, and a bounds error computed on
// an empty stripe could not mirror the global schema's).
func ShardSchemas(schema Schema, n int) ([]Schema, error) {
	if n < 1 {
		return nil, fmt.Errorf("memdb: shard count %d", n)
	}
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	for _, t := range schema.Tables {
		if t.NumRecords < n {
			return nil, fmt.Errorf("memdb: table %q has %d records, fewer than %d shards",
				t.Name, t.NumRecords, n)
		}
	}
	out := make([]Schema, n)
	for k := range out {
		tables := make([]TableSpec, len(schema.Tables))
		copy(tables, schema.Tables)
		for ti := range tables {
			tables[ti].NumRecords = ShardRecords(schema.Tables[ti].NumRecords, k, n)
		}
		out[k] = Schema{Tables: tables}
	}
	return out, nil
}
