package memdb

// Read fast lane. The target controller's call-processing traffic is
// overwhelmingly reads of the shared memory region; serializing them on the
// single-writer owner thread makes that thread the bottleneck. A View gives
// other goroutines optimistic, validated access to the read-only API subset
// (DBread_rec, DBread_fld, record status) without weakening the
// single-writer contract for mutations and audits:
//
//   - Every region mutation runs inside db.mutate(), which takes the region
//     write lock and bumps the seqlock generation counter to odd on entry
//     and back to even on exit.
//   - A View read loads the generation (odd → writer active, retry), copies
//     the bytes it needs out of the region under the read lock, then
//     reloads the generation; an unchanged even value proves no mutation
//     overlapped the copy.
//   - After viewMaxAttempts failed validations the read gives up with
//     ErrContended and the caller falls back to the serialized owner-thread
//     path, so readers can never starve and never spin unbounded.
//
// The RWMutex makes the copy itself race-free (a classic seqlock reads
// concurrently-written plain bytes, which the Go race detector rightly
// flags); the generation counter preserves the seqlock property that a
// reader accepts only values from a single stable interval — no torn reads
// across the fields of one record.
//
// Deliberate trade-offs, documented in DESIGN.md: View reads use the
// schema's true layout (immune to on-region catalog corruption), skip the
// advisory table locks, skip the per-access audit notification (charge) and
// cost accounting, and batch their shadow read-frequency accounting through
// FoldViewReads instead of touching shadow metadata inline.

import (
	"errors"
	"runtime"

	"repro/internal/metrics"
)

// viewMaxAttempts bounds the optimistic retry loop of one View read.
const viewMaxAttempts = 4

// ErrContended reports that a View read could not validate against a stable
// region generation within the retry budget. Callers should fall back to
// the serialized executor path, which cannot be contended.
var ErrContended = errors.New("memdb: read view contended")

// mutate brackets a region mutation for the seqlock protocol:
// defer db.mutate()() takes the write lock and moves the generation to odd,
// and the returned func moves it back to even and unlocks. Owner-thread
// only, non-reentrant.
func (db *DB) mutate() func() {
	db.regionMu.Lock()
	db.regionVer.Add(1) // odd: mutation in progress
	return func() {
		db.regionVer.Add(1) // even: stable
		db.regionMu.Unlock()
	}
}

// viewTable caches the schema-derived layout of one table so View reads
// never consult the (corruptible, and concurrently repairable) on-region
// catalog.
type viewTable struct {
	recBase   int // table offset + group directory
	recSize   int
	numRecs   int
	numFields int
}

// View provides optimistic validated reads of the region from goroutines
// other than the database owner. A View is safe for concurrent use by any
// number of goroutines and stays valid for the life of the DB.
type View struct {
	db     *DB
	tables []viewTable

	// Fast-lane telemetry. The zero-value counters make an unbound View
	// safe to use; BindMetrics repoints them into a registry.
	reads     *metrics.Counter
	retries   *metrics.Counter
	fallbacks *metrics.Counter
}

// ReadView returns a read view over the database. Multiple calls return
// independent views sharing the same counters' semantics.
func (db *DB) ReadView() *View {
	v := &View{
		db:        db,
		tables:    make([]viewTable, len(db.schema.Tables)),
		reads:     &metrics.Counter{},
		retries:   &metrics.Counter{},
		fallbacks: &metrics.Counter{},
	}
	_, tableOffs, _ := layoutSize(db.schema)
	for i, t := range db.schema.Tables {
		v.tables[i] = viewTable{
			recBase:   tableOffs[i] + groupDirSize(t.Groups),
			recSize:   RecordHeaderSize + FieldSize*len(t.Fields),
			numRecs:   t.NumRecords,
			numFields: len(t.Fields),
		}
	}
	return v
}

// BindMetrics registers the fast-lane counters in reg.
func (v *View) BindMetrics(reg *metrics.Registry) {
	v.reads = reg.Counter("fastlane.reads")
	v.retries = reg.Counter("fastlane.retries")
	v.fallbacks = reg.Counter("fastlane.fallbacks")
}

// Reads returns the count of validated fast-lane reads.
func (v *View) Reads() uint64 { return v.reads.Load() }

// Retries returns the count of generation-validation retries.
func (v *View) Retries() uint64 { return v.retries.Load() }

// Fallbacks returns the count of reads abandoned with ErrContended.
func (v *View) Fallbacks() uint64 { return v.fallbacks.Load() }

// locate bounds-checks table and rec, mirroring the executor path's errors
// exactly so the wire mapping is byte-identical either way.
func (v *View) locate(table, rec int) (viewTable, int, error) {
	if table < 0 || table >= len(v.tables) {
		return viewTable{}, 0, &BoundsError{What: "table", Index: table, Limit: len(v.tables)}
	}
	t := v.tables[table]
	if rec < 0 || rec >= t.numRecs {
		return viewTable{}, 0, &BoundsError{What: "record", Index: rec, Limit: t.numRecs}
	}
	return t, t.recBase + t.recSize*rec, nil
}

// stable returns the current even generation, or ok=false when a mutation
// is in flight (after yielding, so the writer can finish).
func (v *View) stable() (uint64, bool) {
	ver := v.db.regionVer.Load()
	if ver&1 != 0 {
		v.retries.Inc()
		runtime.Gosched()
		return 0, false
	}
	return ver, true
}

// validate reports whether the generation is still ver after a copy.
func (v *View) validate(ver uint64) bool {
	if v.db.regionVer.Load() == ver {
		return true
	}
	v.retries.Inc()
	return false
}

func (v *View) noteRead(table int) {
	v.reads.Inc()
	v.db.viewReads[table].Add(1)
}

// ReadRec returns all field values of record rec in table, like
// Client.ReadRec but lock-free and without audit accounting.
func (v *View) ReadRec(table, rec int) ([]uint32, error) {
	t, off, err := v.locate(table, rec)
	if err != nil {
		return nil, err
	}
	vals := make([]uint32, t.numFields)
	for attempt := 0; attempt < viewMaxAttempts; attempt++ {
		ver, ok := v.stable()
		if !ok {
			continue
		}
		v.db.regionMu.RLock()
		for fi := range vals {
			vals[fi] = getU32(v.db.region, off+RecordHeaderSize+FieldSize*fi)
		}
		v.db.regionMu.RUnlock()
		if v.validate(ver) {
			v.noteRead(table)
			return vals, nil
		}
	}
	v.fallbacks.Inc()
	return nil, ErrContended
}

// ReadFld returns one field value, like Client.ReadFld.
func (v *View) ReadFld(table, rec, field int) (uint32, error) {
	t, off, err := v.locate(table, rec)
	if err != nil {
		return 0, err
	}
	if field < 0 || field >= t.numFields {
		return 0, &BoundsError{What: "field", Index: field, Limit: t.numFields}
	}
	fo := off + RecordHeaderSize + FieldSize*field
	for attempt := 0; attempt < viewMaxAttempts; attempt++ {
		ver, ok := v.stable()
		if !ok {
			continue
		}
		v.db.regionMu.RLock()
		val := getU32(v.db.region, fo)
		v.db.regionMu.RUnlock()
		if v.validate(ver) {
			v.noteRead(table)
			return val, nil
		}
	}
	v.fallbacks.Inc()
	return 0, ErrContended
}

// Status returns the status byte of record rec in table, like
// Client.Status.
func (v *View) Status(table, rec int) (int, error) {
	_, off, err := v.locate(table, rec)
	if err != nil {
		return 0, err
	}
	for attempt := 0; attempt < viewMaxAttempts; attempt++ {
		ver, ok := v.stable()
		if !ok {
			continue
		}
		v.db.regionMu.RLock()
		st := int(v.db.region[off+1])
		v.db.regionMu.RUnlock()
		if v.validate(ver) {
			v.noteRead(table)
			return st, nil
		}
	}
	v.fallbacks.Inc()
	return 0, ErrContended
}

// FoldViewReads drains the per-table fast-lane read counts into the shadow
// activity stats so the prioritized audit trigger (§4.4.1) still sees read
// frequency for tables served mostly off the executor. Owner-thread only;
// RefreshMetrics calls it before publishing table gauges.
func (db *DB) FoldViewReads() {
	for i := range db.viewReads {
		if n := db.viewReads[i].Swap(0); n != 0 {
			db.shadow.tables[i].Reads += n
		}
	}
}
