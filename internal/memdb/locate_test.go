package memdb

import (
	"testing"
	"testing/quick"
)

func TestLocateCatalog(t *testing.T) {
	db := mustDB(t)
	loc, err := db.Locate(0)
	if err != nil {
		t.Fatal(err)
	}
	if !loc.Catalog || loc.Table != -1 || loc.Record != -1 {
		t.Fatalf("Locate(0) = %+v, want catalog", loc)
	}
	// Last catalog byte.
	catEnd := db.CatalogExtent().Len
	loc, err = db.Locate(catEnd - 1)
	if err != nil || !loc.Catalog {
		t.Fatalf("Locate(catalog end-1) = %+v, %v", loc, err)
	}
	// First table byte is no longer catalog.
	loc, err = db.Locate(catEnd)
	if err != nil || loc.Catalog {
		t.Fatalf("Locate(first table byte) = %+v, %v", loc, err)
	}
}

func TestLocateHeaderAndFields(t *testing.T) {
	db := mustDB(t)
	off, err := db.TrueRecordOffset(tblConn, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Header bytes.
	for d := 0; d < RecordHeaderSize; d++ {
		loc, err := db.Locate(off + d)
		if err != nil {
			t.Fatal(err)
		}
		if !loc.Header || loc.Table != tblConn || loc.Record != 3 {
			t.Fatalf("Locate(header+%d) = %+v", d, loc)
		}
	}
	// Field bytes map to the right field index.
	for fi := 0; fi < len(db.Schema().Tables[tblConn].Fields); fi++ {
		for d := 0; d < FieldSize; d++ {
			loc, err := db.Locate(off + RecordHeaderSize + FieldSize*fi + d)
			if err != nil {
				t.Fatal(err)
			}
			if loc.Header || loc.Field != fi || loc.Record != 3 || loc.Table != tblConn {
				t.Fatalf("Locate(field %d byte %d) = %+v", fi, d, loc)
			}
		}
	}
}

func TestLocateBounds(t *testing.T) {
	db := mustDB(t)
	if _, err := db.Locate(-1); err == nil {
		t.Fatal("Locate(-1) succeeded")
	}
	if _, err := db.Locate(db.Size()); err == nil {
		t.Fatal("Locate(size) succeeded")
	}
	// Final byte of the region is inside the last table.
	loc, err := db.Locate(db.Size() - 1)
	if err != nil {
		t.Fatal(err)
	}
	if loc.Table != len(db.Schema().Tables)-1 {
		t.Fatalf("Locate(last byte) = %+v", loc)
	}
}

// Property: every in-range offset locates somewhere consistent with the
// true record offsets.
func TestPropertyLocateConsistent(t *testing.T) {
	db := mustDB(t)
	f := func(raw uint16) bool {
		off := int(raw) % db.Size()
		loc, err := db.Locate(off)
		if err != nil {
			return false
		}
		if loc.Catalog {
			return off < db.CatalogExtent().Len
		}
		base, err := db.TrueRecordOffset(loc.Table, loc.Record)
		if err != nil {
			return false
		}
		rel := off - base
		recSize := RecordHeaderSize + FieldSize*len(db.Schema().Tables[loc.Table].Fields)
		if rel < 0 || rel >= recSize {
			return false
		}
		if loc.Header {
			return rel < RecordHeaderSize
		}
		return loc.Field == (rel-RecordHeaderSize)/FieldSize
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotField(t *testing.T) {
	db := mustDB(t)
	c := mustClient(t, db)
	// Snapshot holds the pristine defaults even after live writes.
	ri, err := c.Alloc(tblProc, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WriteFld(tblProc, ri, 1, 3); err != nil {
		t.Fatal(err)
	}
	want := db.Schema().Tables[tblProc].Fields[1].Default
	got, err := db.SnapshotField(tblProc, ri, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("SnapshotField = %d, want pristine default %d", got, want)
	}
	if _, err := db.SnapshotField(tblProc, ri, 99); err == nil {
		t.Fatal("bad field accepted")
	}
	if _, err := db.SnapshotField(99, 0, 0); err == nil {
		t.Fatal("bad table accepted")
	}
}

func TestResetLink(t *testing.T) {
	db := mustDB(t)
	off, err := db.TrueRecordOffset(tblRes, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the adjacency index.
	db.Raw()[off+6] = 0x12
	db.Raw()[off+7] = 0x00
	if h := db.HeaderAt(off); h.NextIdx == NilIndex {
		t.Fatal("corruption did not change NextIdx")
	}
	if err := db.ResetLink(tblRes, 2); err != nil {
		t.Fatal(err)
	}
	if h := db.HeaderAt(off); h.NextIdx != NilIndex {
		t.Fatalf("NextIdx after reset = %d", h.NextIdx)
	}
	if err := db.ResetLink(99, 0); err == nil {
		t.Fatal("bad table accepted")
	}
}

func TestCatalogFieldSpecReadsLiveRegion(t *testing.T) {
	db := mustDB(t)
	spec, err := db.CatalogFieldSpec(tblProc, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := db.Schema().Tables[tblProc].Fields[1]
	if spec.Kind != want.Kind || spec.Min != want.Min || spec.Max != want.Max ||
		spec.Default != want.Default || spec.HasRange != want.HasRange {
		t.Fatalf("CatalogFieldSpec = %+v, want %+v", spec, want)
	}
	// Corrupting the catalog magic makes the lookup fail, as every API
	// path that depends on the catalog should.
	db.Raw()[0] ^= 0xFF
	if _, err := db.CatalogFieldSpec(tblProc, 1); err == nil {
		t.Fatal("lookup succeeded with corrupt catalog")
	}
}
