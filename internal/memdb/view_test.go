package memdb

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
)

// viewSchema is a single dynamic table whose invariant the stress test
// checks: every committed write leaves all three fields of a record equal,
// so any read observing unequal fields is a torn read.
func viewSchema() Schema {
	return Schema{Tables: []TableSpec{{
		Name:       "Mirror",
		Dynamic:    true,
		NumRecords: 8,
		Groups:     2,
		Fields: []FieldSpec{
			{Name: "A", Kind: Dynamic},
			{Name: "B", Kind: Dynamic},
			{Name: "C", Kind: Dynamic},
		},
	}}}
}

func TestReadViewMatchesClient(t *testing.T) {
	db, err := New(testSchema())
	if err != nil {
		t.Fatal(err)
	}
	cl, err := db.Connect()
	if err != nil {
		t.Fatal(err)
	}
	v := db.ReadView()

	const table = 3 // Resource
	ri, err := cl.Alloc(table, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint32{7, 1}
	if err := cl.WriteRec(table, ri, want); err != nil {
		t.Fatal(err)
	}

	got, err := v.ReadRec(table, ri)
	if err != nil {
		t.Fatalf("view ReadRec: %v", err)
	}
	for fi := range want {
		if got[fi] != want[fi] {
			t.Fatalf("view ReadRec field %d = %d, want %d", fi, got[fi], want[fi])
		}
		fv, err := v.ReadFld(table, ri, fi)
		if err != nil || fv != want[fi] {
			t.Fatalf("view ReadFld(%d) = %d, %v, want %d", fi, fv, err, want[fi])
		}
	}
	st, err := v.Status(table, ri)
	if err != nil || st != StatusActive {
		t.Fatalf("view Status = %d, %v, want active", st, err)
	}
	if v.Reads() == 0 {
		t.Fatal("view read counter did not advance")
	}

	// Bounds errors must be byte-identical to the executor path's so the
	// wire mapping does not depend on which lane served the read.
	var be *BoundsError
	if _, err := v.ReadRec(99, 0); !errors.As(err, &be) || be.What != "table" {
		t.Fatalf("table bounds error = %v", err)
	}
	if _, err := v.ReadRec(table, 99999); !errors.As(err, &be) || be.What != "record" || be.Index != 99999 {
		t.Fatalf("record bounds error = %v", err)
	}
	if _, err := v.ReadFld(table, ri, 99); !errors.As(err, &be) || be.What != "field" {
		t.Fatalf("field bounds error = %v", err)
	}
}

func TestFoldViewReads(t *testing.T) {
	db, err := New(viewSchema())
	if err != nil {
		t.Fatal(err)
	}
	v := db.ReadView()
	before := db.TableStats(0).Reads
	for i := 0; i < 10; i++ {
		if _, err := v.ReadRec(0, 0); err != nil {
			t.Fatal(err)
		}
	}
	db.FoldViewReads()
	if got := db.TableStats(0).Reads; got != before+10 {
		t.Fatalf("folded reads = %d, want %d", got, before+10)
	}
	db.FoldViewReads() // second fold must be a no-op
	if got := db.TableStats(0).Reads; got != before+10 {
		t.Fatalf("reads after empty fold = %d, want %d", got, before+10)
	}
}

// TestReadViewStress hammers View reads from several goroutines while a
// single writer runs API mutations, audit repairs, reloads, and replication
// applies against the same records — the full set of region mutators the
// seqlock brackets. Every committed state keeps a record's fields equal, so
// any unequal triple is a torn read. Run under -race this also proves the
// fast lane is data-race-free against every mutation path.
func TestReadViewStress(t *testing.T) {
	db, err := New(viewSchema())
	if err != nil {
		t.Fatal(err)
	}
	// Armed guard with nil handler: a View read entering the API bracket
	// (it must not) would panic the test.
	db.EnableConcurrencyCheck(nil)
	cl, err := db.Connect()
	if err != nil {
		t.Fatal(err)
	}
	v := db.ReadView()

	const (
		table   = 0
		readers = 4
		reads   = 30000
	)
	nRecs := db.Schema().Tables[table].NumRecords

	done := make(chan struct{})
	var writerWg, readerWg sync.WaitGroup
	writerWg.Add(1)
	go func() { // single writer: API ops + audit repairs + replays
		defer writerWg.Done()
		ext, _ := db.TableExtent(table)
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			ri := i % nRecs
			x := uint32(i)
			switch i % 8 {
			case 0:
				_, _ = cl.Alloc(table, i%2)
			case 1:
				_ = cl.WriteRec(table, ri, []uint32{x, x, x})
			case 2:
				_ = db.WriteRecDirect(table, ri, []uint32{x, x, x})
			case 3:
				_ = db.ReloadExtent(ext.Off, ext.Len)
			case 4:
				_ = db.RewriteHeader(table, ri)
			case 5:
				_ = db.FreeRecordDirect(table, ri)
			case 6:
				db.ReloadAll()
			case 7:
				_, _ = db.RebuildGroups(table)
			}
		}
	}()

	var readerErr error
	var mu sync.Mutex
	for r := 0; r < readers; r++ {
		readerWg.Add(1)
		go func(seed int64) {
			defer readerWg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < reads; i++ {
				ri := rng.Intn(nRecs)
				switch i % 3 {
				case 0:
					vals, err := v.ReadRec(table, ri)
					if errors.Is(err, ErrContended) {
						continue
					}
					if err != nil {
						mu.Lock()
						readerErr = err
						mu.Unlock()
						return
					}
					if vals[0] != vals[1] || vals[1] != vals[2] {
						mu.Lock()
						readerErr = errors.New("torn read: unequal fields")
						mu.Unlock()
						return
					}
				case 1:
					if _, err := v.ReadFld(table, ri, i%3); err != nil && !errors.Is(err, ErrContended) {
						mu.Lock()
						readerErr = err
						mu.Unlock()
						return
					}
				case 2:
					if st, err := v.Status(table, ri); err == nil && st != StatusFree && st != StatusActive {
						mu.Lock()
						readerErr = errors.New("torn status byte")
						mu.Unlock()
						return
					}
				}
			}
		}(int64(r) + 1)
	}

	readerWg.Wait()
	close(done)
	writerWg.Wait()

	if readerErr != nil {
		t.Fatal(readerErr)
	}
	if v.Reads() == 0 {
		t.Fatal("stress run recorded no validated reads")
	}
	if db.GuardViolations() != 0 {
		t.Fatalf("guard violations = %d, want 0", db.GuardViolations())
	}
	t.Logf("reads=%d retries=%d fallbacks=%d", v.Reads(), v.Retries(), v.Fallbacks())
}
