// Model-based property test: a long randomized run of the seven-call API
// is checked, call by call, against a plain in-memory golden model. The
// package is external (memdb_test) because the final certifying sweep uses
// internal/audit, which itself imports memdb.
package memdb_test

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/audit"
	"repro/internal/memdb"
)

// modelRec mirrors one record: allocation status plus field values.
type modelRec struct {
	active bool
	vals   []uint32
}

// model is the golden copy of both dynamic tables.
type model struct {
	tables map[int][]modelRec
}

func newModel(schema memdb.Schema, tables ...int) *model {
	m := &model{tables: make(map[int][]modelRec)}
	for _, ti := range tables {
		spec := schema.Tables[ti]
		recs := make([]modelRec, spec.NumRecords)
		for ri := range recs {
			recs[ri] = modelRec{vals: defaults(spec)}
		}
		m.tables[ti] = recs
	}
	return m
}

func defaults(spec memdb.TableSpec) []uint32 {
	vals := make([]uint32, len(spec.Fields))
	for i, f := range spec.Fields {
		vals[i] = f.Default
	}
	return vals
}

// alloc returns the index the first-free scan must claim, or -1 when full.
func (m *model) alloc(table int) int {
	for ri := range m.tables[table] {
		if !m.tables[table][ri].active {
			m.tables[table][ri].active = true
			return ri
		}
	}
	return -1
}

// modelSchema is the purview of the randomized run: an untouched static
// configuration table (its checksum must survive the whole run), a plain
// dynamic table, and a group-chained dynamic table so allocation, free,
// and move all exercise the header chain relinking the structural audit
// verifies.
func modelSchema() memdb.Schema {
	return memdb.Schema{Tables: []memdb.TableSpec{
		{
			Name: "Cfg", NumRecords: 4,
			Fields: []memdb.FieldSpec{
				{Name: "Limit", Kind: memdb.Static, HasRange: true, Min: 1, Max: 100, Default: 10},
				{Name: "Mode", Kind: memdb.Static, HasRange: true, Min: 0, Max: 3, Default: 1},
			},
		},
		{
			Name: "Plain", Dynamic: true, NumRecords: 8,
			Fields: []memdb.FieldSpec{
				{Name: "A", Kind: memdb.Dynamic, HasRange: true, Min: 0, Max: 1000, Default: 0},
				{Name: "B", Kind: memdb.Dynamic, HasRange: true, Min: 5, Max: 50, Default: 5},
				{Name: "C", Kind: memdb.Dynamic, Default: 0},
			},
		},
		{
			Name: "Chained", Dynamic: true, NumRecords: 8, Groups: 3,
			Fields: []memdb.FieldSpec{
				{Name: "X", Kind: memdb.Dynamic, HasRange: true, Min: 0, Max: 255, Default: 0},
				{Name: "Y", Kind: memdb.Dynamic, HasRange: true, Min: 0, Max: 7, Default: 0},
			},
		},
	}}
}

const (
	tblPlain   = 1
	tblChained = 2
)

// TestModelRandomOps drives ~1k randomized operations — roughly a fifth of
// them deliberately invalid — against the API with the concurrency guard
// armed, checking every result against the golden model, and finishes with
// a full static/structural/range sweep that must come back clean.
func TestModelRandomOps(t *testing.T) {
	schema := modelSchema()
	db, err := memdb.New(schema)
	if err != nil {
		t.Fatal(err)
	}
	db.EnableConcurrencyCheck(nil)
	defer db.DisableConcurrencyCheck()
	c, err := db.Connect()
	if err != nil {
		t.Fatal(err)
	}

	m := newModel(schema, tblPlain, tblChained)
	rng := rand.New(rand.NewSource(20010701)) // deterministic: DSN 2001 deadline
	groups := map[int]int{tblPlain: 0, tblChained: 3}

	// inRange picks a legal value for field fi of table ti.
	inRange := func(ti, fi int) uint32 {
		f := schema.Tables[ti].Fields[fi]
		if !f.HasRange {
			return rng.Uint32() % 1000
		}
		return f.Min + rng.Uint32()%(f.Max-f.Min+1)
	}

	tablesUnderTest := []int{tblPlain, tblChained}
	for op := 0; op < 1000; op++ {
		ti := tablesUnderTest[rng.Intn(len(tablesUnderTest))]
		spec := schema.Tables[ti]
		recs := m.tables[ti]
		ri := rng.Intn(spec.NumRecords)
		rec := &recs[ri]

		switch rng.Intn(10) {
		case 0: // Alloc
			group := 0
			if groups[ti] > 0 {
				group = rng.Intn(groups[ti])
			}
			got, err := c.Alloc(ti, group)
			want := m.alloc(ti)
			if want < 0 {
				if !errors.Is(err, memdb.ErrNoFreeRecord) {
					t.Fatalf("op %d: Alloc on full table %d: got (%d, %v), want ErrNoFreeRecord", op, ti, got, err)
				}
			} else if err != nil || got != want {
				t.Fatalf("op %d: Alloc(%d, %d) = (%d, %v), model wants record %d", op, ti, group, got, err, want)
			}
		case 1: // Free: legal on any record, resets fields to defaults
			if err := c.Free(ti, ri); err != nil {
				t.Fatalf("op %d: Free(%d, %d): %v", op, ti, ri, err)
			}
			rec.active = false
			rec.vals = defaults(spec)
		case 2: // WriteRec on whatever state the record is in
			vals := make([]uint32, len(spec.Fields))
			for fi := range vals {
				vals[fi] = inRange(ti, fi)
			}
			err := c.WriteRec(ti, ri, vals)
			if rec.active {
				if err != nil {
					t.Fatalf("op %d: WriteRec(%d, %d): %v", op, ti, ri, err)
				}
				rec.vals = vals
			} else if !errors.Is(err, memdb.ErrNotActive) {
				t.Fatalf("op %d: WriteRec on free record %d/%d: err = %v, want ErrNotActive", op, ti, ri, err)
			}
		case 3: // WriteFld
			fi := rng.Intn(len(spec.Fields))
			v := inRange(ti, fi)
			err := c.WriteFld(ti, ri, fi, v)
			if rec.active {
				if err != nil {
					t.Fatalf("op %d: WriteFld(%d, %d, %d): %v", op, ti, ri, fi, err)
				}
				rec.vals[fi] = v
			} else if !errors.Is(err, memdb.ErrNotActive) {
				t.Fatalf("op %d: WriteFld on free record: err = %v, want ErrNotActive", op, err)
			}
		case 4: // ReadRec: legal on free records too (reads see defaults)
			vals, err := c.ReadRec(ti, ri)
			if err != nil {
				t.Fatalf("op %d: ReadRec(%d, %d): %v", op, ti, ri, err)
			}
			for fi := range rec.vals {
				if vals[fi] != rec.vals[fi] {
					t.Fatalf("op %d: ReadRec(%d, %d) field %d = %d, model %d",
						op, ti, ri, fi, vals[fi], rec.vals[fi])
				}
			}
		case 5: // ReadFld
			fi := rng.Intn(len(spec.Fields))
			v, err := c.ReadFld(ti, ri, fi)
			if err != nil {
				t.Fatalf("op %d: ReadFld(%d, %d, %d): %v", op, ti, ri, fi, err)
			}
			if v != rec.vals[fi] {
				t.Fatalf("op %d: ReadFld(%d, %d, %d) = %d, model %d", op, ti, ri, fi, v, rec.vals[fi])
			}
		case 6: // Move
			group := 0
			if groups[ti] > 0 {
				group = rng.Intn(groups[ti])
			}
			err := c.Move(ti, ri, group)
			if rec.active {
				if err != nil {
					t.Fatalf("op %d: Move(%d, %d, %d): %v", op, ti, ri, group, err)
				}
			} else if !errors.Is(err, memdb.ErrNotActive) {
				t.Fatalf("op %d: Move on free record: err = %v, want ErrNotActive", op, err)
			}
		case 7: // Status
			st, err := c.Status(ti, ri)
			if err != nil {
				t.Fatalf("op %d: Status(%d, %d): %v", op, ti, ri, err)
			}
			want := memdb.StatusFree
			if rec.active {
				want = memdb.StatusActive
			}
			if st != want {
				t.Fatalf("op %d: Status(%d, %d) = %d, model %d", op, ti, ri, st, want)
			}
		case 8: // transaction bracket around a write
			if err := c.Begin(ti); err != nil {
				t.Fatalf("op %d: Begin(%d): %v", op, ti, err)
			}
			fi := rng.Intn(len(spec.Fields))
			v := inRange(ti, fi)
			err := c.WriteFld(ti, ri, fi, v)
			if rec.active {
				if err != nil {
					t.Fatalf("op %d: WriteFld in txn: %v", op, err)
				}
				rec.vals[fi] = v
			} else if !errors.Is(err, memdb.ErrNotActive) {
				t.Fatalf("op %d: WriteFld in txn on free record: err = %v", op, err)
			}
			if err := c.Commit(); err != nil {
				t.Fatalf("op %d: Commit: %v", op, err)
			}
		case 9: // deliberately out-of-contract calls: must error, never corrupt
			switch rng.Intn(4) {
			case 0: // record index out of bounds
				var be *memdb.BoundsError
				if _, err := c.ReadRec(ti, spec.NumRecords+rng.Intn(5)); !errors.As(err, &be) {
					t.Fatalf("op %d: out-of-bounds ReadRec: err = %v, want BoundsError", op, err)
				}
			case 1: // field index out of bounds
				var be *memdb.BoundsError
				if _, err := c.ReadFld(ti, ri, len(spec.Fields)); !errors.As(err, &be) {
					t.Fatalf("op %d: out-of-bounds ReadFld: err = %v, want BoundsError", op, err)
				}
			case 2: // wrong value-vector length
				if err := c.WriteRec(ti, ri, []uint32{1}); err == nil {
					t.Fatalf("op %d: short WriteRec accepted", op)
				}
			case 3: // bad group on the chained table
				var be *memdb.BoundsError
				if _, err := c.Alloc(tblChained, groups[tblChained]); !errors.As(err, &be) {
					t.Fatalf("op %d: bad-group Alloc: err = %v, want BoundsError", op, err)
				}
			}
		}
	}

	// Final full readback: region and model must agree everywhere.
	for _, ti := range tablesUnderTest {
		for ri, rec := range m.tables[ti] {
			vals, err := c.ReadRec(ti, ri)
			if err != nil {
				t.Fatalf("final ReadRec(%d, %d): %v", ti, ri, err)
			}
			for fi := range rec.vals {
				if vals[fi] != rec.vals[fi] {
					t.Errorf("final state: table %d record %d field %d = %d, model %d",
						ti, ri, fi, vals[fi], rec.vals[fi])
				}
			}
			st, err := c.Status(ti, ri)
			if err != nil {
				t.Fatalf("final Status(%d, %d): %v", ti, ri, err)
			}
			want := memdb.StatusFree
			if rec.active {
				want = memdb.StatusActive
			}
			if st != want {
				t.Errorf("final state: table %d record %d status %d, model %d", ti, ri, st, want)
			}
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// The run only wrote in-range values through the API, so every audit
	// technique over the whole region must certify it clean.
	for _, chk := range []audit.FullChecker{
		audit.NewStaticCheck(db, audit.Recovery{}),
		audit.NewStructuralCheck(db, audit.Recovery{}),
		audit.NewRangeCheck(db, audit.Recovery{}),
	} {
		if fs := chk.CheckAll(); len(fs) != 0 {
			t.Errorf("final %s sweep: %d findings, first: %+v", chk.Name(), len(fs), fs[0])
		}
	}
	if n := db.GuardViolations(); n != 0 {
		t.Errorf("concurrency guard tripped %d times in a single-goroutine run", n)
	}
}
