package memdb

import (
	"errors"
	"testing"
	"time"

	"repro/internal/ipc"
)

const (
	tblConfig = 0
	tblProc   = 1
	tblConn   = 2
	tblRes    = 3
)

func TestAllocWriteReadFree(t *testing.T) {
	db := mustDB(t)
	c := mustClient(t, db)

	ri, err := c.Alloc(tblConn, 5)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if err := c.WriteRec(tblConn, ri, []uint32{3, 777, 2}); err != nil {
		t.Fatalf("WriteRec: %v", err)
	}
	got, err := c.ReadRec(tblConn, ri)
	if err != nil {
		t.Fatalf("ReadRec: %v", err)
	}
	want := []uint32{3, 777, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ReadRec = %v, want %v", got, want)
		}
	}
	st, err := c.Status(tblConn, ri)
	if err != nil || st != StatusActive {
		t.Fatalf("Status = (%d,%v), want active", st, err)
	}
	if err := c.Free(tblConn, ri); err != nil {
		t.Fatalf("Free: %v", err)
	}
	st, err = c.Status(tblConn, ri)
	if err != nil || st != StatusFree {
		t.Fatalf("Status after Free = (%d,%v), want free", st, err)
	}
	// Freed record's fields reset to defaults.
	vals, err := c.ReadRec(tblConn, ri)
	if err != nil {
		t.Fatalf("ReadRec after free: %v", err)
	}
	for i, f := range db.Schema().Tables[tblConn].Fields {
		if vals[i] != f.Default {
			t.Fatalf("field %d after free = %d, want default %d", i, vals[i], f.Default)
		}
	}
}

func TestWriteFldAndReadFld(t *testing.T) {
	db := mustDB(t)
	c := mustClient(t, db)
	ri, err := c.Alloc(tblProc, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WriteFld(tblProc, ri, 1, 3); err != nil {
		t.Fatalf("WriteFld: %v", err)
	}
	v, err := c.ReadFld(tblProc, ri, 1)
	if err != nil || v != 3 {
		t.Fatalf("ReadFld = (%d,%v), want 3", v, err)
	}
	if _, err := c.ReadFld(tblProc, ri, 99); err == nil {
		t.Fatal("ReadFld with bad field index succeeded")
	}
	if err := c.WriteFld(tblProc, ri, -1, 0); err == nil {
		t.Fatal("WriteFld with negative field index succeeded")
	}
}

func TestWriteToFreeRecordRejected(t *testing.T) {
	db := mustDB(t)
	c := mustClient(t, db)
	err := c.WriteRec(tblProc, 0, []uint32{0, 0})
	if !errors.Is(err, ErrNotActive) {
		t.Fatalf("WriteRec on free record: %v, want ErrNotActive", err)
	}
	err = c.WriteFld(tblProc, 0, 0, 1)
	if !errors.Is(err, ErrNotActive) {
		t.Fatalf("WriteFld on free record: %v, want ErrNotActive", err)
	}
	err = c.Move(tblProc, 0, 2)
	if !errors.Is(err, ErrNotActive) {
		t.Fatalf("Move on free record: %v, want ErrNotActive", err)
	}
}

func TestWriteRecWrongArity(t *testing.T) {
	db := mustDB(t)
	c := mustClient(t, db)
	ri, _ := c.Alloc(tblProc, 0)
	if err := c.WriteRec(tblProc, ri, []uint32{1}); err == nil {
		t.Fatal("WriteRec with wrong value count succeeded")
	}
}

func TestMoveChangesGroup(t *testing.T) {
	db := mustDB(t)
	c := mustClient(t, db)
	ri, _ := c.Alloc(tblRes, 1)
	if err := c.Move(tblRes, ri, 9); err != nil {
		t.Fatalf("Move: %v", err)
	}
	off, _ := db.TrueRecordOffset(tblRes, ri)
	if h := db.HeaderAt(off); h.GroupID != 9 {
		t.Fatalf("GroupID = %d, want 9", h.GroupID)
	}
	if err := c.Move(tblRes, ri, -1); err == nil {
		t.Fatal("Move to negative group succeeded")
	}
}

func TestAllocExhaustion(t *testing.T) {
	db := mustDB(t)
	c := mustClient(t, db)
	n := db.Schema().Tables[tblProc].NumRecords
	for i := 0; i < n; i++ {
		if _, err := c.Alloc(tblProc, 0); err != nil {
			t.Fatalf("Alloc %d: %v", i, err)
		}
	}
	_, err := c.Alloc(tblProc, 0)
	if !errors.Is(err, ErrNoFreeRecord) {
		t.Fatalf("Alloc on full table: %v, want ErrNoFreeRecord", err)
	}
	// Freeing one makes allocation possible again, reusing that slot.
	if err := c.Free(tblProc, 3); err != nil {
		t.Fatal(err)
	}
	ri, err := c.Alloc(tblProc, 0)
	if err != nil || ri != 3 {
		t.Fatalf("Alloc after free = (%d,%v), want slot 3", ri, err)
	}
}

func TestClosedClientRejectsOps(t *testing.T) {
	db := mustDB(t)
	c := mustClient(t, db)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("double Close: %v, want ErrClosed", err)
	}
	if _, err := c.ReadRec(tblProc, 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("ReadRec after Close: %v", err)
	}
	if _, err := c.Alloc(tblProc, 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("Alloc after Close: %v", err)
	}
	if err := c.Begin(tblProc); !errors.Is(err, ErrClosed) {
		t.Fatalf("Begin after Close: %v", err)
	}
}

func TestLockContention(t *testing.T) {
	db := mustDB(t)
	a := mustClient(t, db)
	b := mustClient(t, db)
	if err := a.Begin(tblConn); err != nil {
		t.Fatalf("Begin: %v", err)
	}
	if !a.InTxn(tblConn) {
		t.Fatal("InTxn = false after Begin")
	}
	_, err := b.Alloc(tblConn, 0)
	if !errors.Is(err, ErrLocked) {
		t.Fatalf("Alloc under foreign lock: %v, want ErrLocked", err)
	}
	// The holder can keep operating.
	if _, err := a.Alloc(tblConn, 0); err != nil {
		t.Fatalf("holder Alloc: %v", err)
	}
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Alloc(tblConn, 0); err != nil {
		t.Fatalf("Alloc after Commit: %v", err)
	}
}

func TestAbandonLeavesLockHeld(t *testing.T) {
	clock := time.Duration(0)
	db := mustDB(t, WithClock(func() time.Duration { return clock }))
	a := mustClient(t, db)
	b := mustClient(t, db)
	if err := a.Begin(tblConn); err != nil {
		t.Fatal(err)
	}
	clock = 5 * time.Second
	a.Abandon()
	if !a.Closed() {
		t.Fatal("Closed = false after Abandon")
	}
	pid, heldFor, held := db.LockHolder(tblConn)
	if !held || pid != a.PID() {
		t.Fatalf("LockHolder = (%d,%v,%v), want held by %d", pid, heldFor, held, a.PID())
	}
	if heldFor != 5*time.Second {
		t.Fatalf("heldFor = %v, want 5s", heldFor)
	}
	if _, err := b.Alloc(tblConn, 0); !errors.Is(err, ErrLocked) {
		t.Fatalf("Alloc with abandoned lock: %v, want ErrLocked", err)
	}
	// Progress-indicator style recovery: force-release.
	if n := db.ReleaseAllLocks(a.PID()); n != 1 {
		t.Fatalf("ReleaseAllLocks = %d, want 1", n)
	}
	if _, err := b.Alloc(tblConn, 0); err != nil {
		t.Fatalf("Alloc after forced release: %v", err)
	}
}

func TestCloseReleasesLocks(t *testing.T) {
	db := mustDB(t)
	a := mustClient(t, db)
	b := mustClient(t, db)
	if err := a.Begin(tblConn); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Alloc(tblConn, 0); err != nil {
		t.Fatalf("Alloc after holder Close: %v", err)
	}
}

func TestShadowMetadataTracksAccess(t *testing.T) {
	clock := 3 * time.Second
	db := mustDB(t, WithClock(func() time.Duration { return clock }))
	c := mustClient(t, db)
	ri, _ := c.Alloc(tblProc, 0)
	_ = c.WriteFld(tblProc, ri, 0, 1)
	clock = 7 * time.Second
	_, _ = c.ReadRec(tblProc, ri)
	m, err := db.Meta(tblProc, ri)
	if err != nil {
		t.Fatal(err)
	}
	if m.LastPID != c.PID() {
		t.Fatalf("LastPID = %d, want %d", m.LastPID, c.PID())
	}
	if m.LastAccess != 7*time.Second {
		t.Fatalf("LastAccess = %v, want 7s", m.LastAccess)
	}
	if m.Writes != 2 || m.Reads != 1 { // alloc + writefld, readrec
		t.Fatalf("Reads/Writes = %d/%d, want 1/2", m.Reads, m.Writes)
	}
	if m.Version != 2 {
		t.Fatalf("Version = %d, want 2", m.Version)
	}
	ts := db.TableStats(tblProc)
	if ts.Writes != 2 || ts.Reads != 1 {
		t.Fatalf("TableStats = %+v", ts)
	}
}

func TestAuditNotificationsPosted(t *testing.T) {
	db := mustDB(t)
	q, err := ipc.NewQueue(100)
	if err != nil {
		t.Fatal(err)
	}
	db.EnableAudit(q)
	if !db.Audited() {
		t.Fatal("Audited = false after EnableAudit")
	}
	c := mustClient(t, db)
	ri, _ := c.Alloc(tblConn, 0)
	_ = c.WriteRec(tblConn, ri, []uint32{1, 2, 3})
	_, _ = c.ReadFld(tblConn, ri, 0)

	msgs := q.DrainAll()
	if len(msgs) != 4 { // init, alloc, write, read
		t.Fatalf("got %d messages, want 4: %+v", len(msgs), msgs)
	}
	kinds := []ipc.MsgKind{ipc.MsgDBAccess, ipc.MsgDBWrite, ipc.MsgDBWrite, ipc.MsgDBAccess}
	for i, m := range msgs {
		if m.Kind != kinds[i] {
			t.Fatalf("message %d kind = %v, want %v", i, m.Kind, kinds[i])
		}
	}
	if msgs[2].Op != "DBwrite_rec" || msgs[2].Table != tblConn || msgs[2].Record != ri {
		t.Fatalf("write message = %+v", msgs[2])
	}
	if msgs[2].PID != c.PID() {
		t.Fatalf("write message PID = %d, want %d", msgs[2].PID, c.PID())
	}
}

func TestAuditOverheadCharged(t *testing.T) {
	m := DefaultCostModel()
	plain := m.Cost(OpWriteRec, false)
	audited := m.Cost(OpWriteRec, true)
	wantRatio := 1.452
	gotRatio := float64(audited) / float64(plain)
	if gotRatio < wantRatio-0.001 || gotRatio > wantRatio+0.001 {
		t.Fatalf("audited/plain = %v, want %v", gotRatio, wantRatio)
	}
	db := mustDB(t)
	c := mustClient(t, db)
	ri, _ := c.Alloc(tblConn, 0)
	before := db.Counts().Time[OpWriteRec]
	_ = c.WriteRec(tblConn, ri, []uint32{0, 0, 0})
	d := db.Counts().Time[OpWriteRec] - before
	if d != plain {
		t.Fatalf("unaudited WriteRec charged %v, want %v", d, plain)
	}
	q, _ := ipc.NewQueue(10)
	db.EnableAudit(q)
	before = db.Counts().Time[OpWriteRec]
	_ = c.WriteRec(tblConn, ri, []uint32{0, 0, 0})
	d = db.Counts().Time[OpWriteRec] - before
	if d != audited {
		t.Fatalf("audited WriteRec charged %v, want %v", d, audited)
	}
	db.DisableAudit()
	if db.Audited() {
		t.Fatal("Audited = true after DisableAudit")
	}
}

func TestOpStrings(t *testing.T) {
	want := map[Op]string{
		OpInit: "DBinit", OpClose: "DBclose", OpReadRec: "DBread_rec",
		OpReadFld: "DBread_fld", OpWriteRec: "DBwrite_rec", OpWriteFld: "DBwrite_fld",
		OpMove: "DBmove", OpAlloc: "DBalloc", OpFree: "DBfree", Op(0): "unknown",
	}
	for op, name := range want {
		if op.String() != name {
			t.Errorf("Op(%d).String() = %q, want %q", op, op.String(), name)
		}
	}
}

func TestClientByPID(t *testing.T) {
	db := mustDB(t)
	c := mustClient(t, db)
	if db.ClientByPID(c.PID()) != c {
		t.Fatal("ClientByPID did not return the client")
	}
	_ = c.Close()
	if db.ClientByPID(c.PID()) != nil {
		t.Fatal("ClientByPID returned a closed client")
	}
}
