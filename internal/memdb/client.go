package memdb

import (
	"fmt"
	"time"
)

// Client is one database connection (the paper's DBinit/DBclose session).
// Every call-processing thread owns a Client; the PID identifies it in
// lock tables, shadow metadata, and audit diagnoses.
type Client struct {
	db     *DB
	pid    int
	closed bool
	txn    map[int]bool // tables locked by an open transaction
}

// PID returns the client's process identifier.
func (c *Client) PID() int { return c.pid }

// Close releases the connection and its locks (DBclose).
func (c *Client) Close() error {
	defer c.db.guardEnter("DBclose")()
	if c.closed {
		return ErrClosed
	}
	c.db.charge(OpClose, c.pid, -1, -1)
	c.db.ReleaseAllLocks(c.pid)
	c.closed = true
	delete(c.db.clients, c.pid)
	c.txn = nil
	return nil
}

// Abandon simulates the client crashing without committing: the connection
// is dead but its locks stay held, the exact condition the progress
// indicator element exists to detect (§4.2).
func (c *Client) Abandon() {
	c.closed = true
	delete(c.db.clients, c.pid)
}

// Closed reports whether the connection is closed or abandoned.
func (c *Client) Closed() bool { return c.closed }

// Begin opens a transaction on table: the lock is held across operations
// until Commit. Nested Begin on the same table is a no-op.
func (c *Client) Begin(table int) error {
	defer c.db.guardEnter("DBbegin")()
	if c.closed {
		return ErrClosed
	}
	if err := c.db.acquire(table, c.pid); err != nil {
		return err
	}
	if c.txn == nil {
		c.txn = make(map[int]bool)
	}
	c.txn[table] = true
	return nil
}

// Commit releases every transaction lock held by the client.
func (c *Client) Commit() error {
	defer c.db.guardEnter("DBcommit")()
	if c.closed {
		return ErrClosed
	}
	for table := range c.txn {
		c.db.release(table, c.pid)
	}
	c.txn = nil
	return nil
}

// InTxn reports whether the client holds a transaction lock on table.
func (c *Client) InTxn(table int) bool { return c.txn[table] }

// lockFor acquires table's lock for the duration of one operation, and
// returns the matching unlock. Under an open transaction the lock is
// already held and must not be dropped by the per-op path.
func (c *Client) lockFor(table int) (unlock func(), err error) {
	if err := c.db.acquire(table, c.pid); err != nil {
		return nil, err
	}
	if c.txn[table] {
		return func() {}, nil
	}
	return func() { c.db.release(table, c.pid) }, nil
}

// ReadRec reads all fields of record rec in table (DBread_rec).
func (c *Client) ReadRec(table, rec int) ([]uint32, error) {
	defer c.db.guardEnter("DBread_rec")()
	if c.closed {
		return nil, ErrClosed
	}
	unlock, err := c.lockFor(table)
	if err != nil {
		return nil, err
	}
	defer unlock()
	defer c.db.charge(OpReadRec, c.pid, table, rec)
	td, off, err := c.locate(table, rec)
	if err != nil {
		return nil, err
	}
	vals := make([]uint32, td.NumFields)
	for fi := range vals {
		vals[fi] = getU32(c.db.region, off+RecordHeaderSize+FieldSize*fi)
	}
	c.db.shadow.noteRead(table, rec, c.pid, c.db.now())
	return vals, nil
}

// ReadFld reads one field of a record (DBread_fld).
func (c *Client) ReadFld(table, rec, field int) (uint32, error) {
	defer c.db.guardEnter("DBread_fld")()
	if c.closed {
		return 0, ErrClosed
	}
	unlock, err := c.lockFor(table)
	if err != nil {
		return 0, err
	}
	defer unlock()
	defer c.db.charge(OpReadFld, c.pid, table, rec)
	td, off, err := c.locate(table, rec)
	if err != nil {
		return 0, err
	}
	if field < 0 || field >= td.NumFields {
		return 0, &BoundsError{What: "field", Index: field, Limit: td.NumFields}
	}
	c.db.shadow.noteRead(table, rec, c.pid, c.db.now())
	return getU32(c.db.region, off+RecordHeaderSize+FieldSize*field), nil
}

// WriteRec writes all fields of an active record (DBwrite_rec).
func (c *Client) WriteRec(table, rec int, vals []uint32) error {
	defer c.db.guardEnter("DBwrite_rec")()
	defer c.db.mutate()()
	if c.closed {
		return ErrClosed
	}
	unlock, err := c.lockFor(table)
	if err != nil {
		return err
	}
	defer unlock()
	defer c.db.charge(OpWriteRec, c.pid, table, rec)
	td, off, err := c.locate(table, rec)
	if err != nil {
		return err
	}
	if len(vals) != td.NumFields {
		return fmt.Errorf("memdb: WriteRec got %d values for %d fields", len(vals), td.NumFields)
	}
	if c.db.region[off+1] != StatusActive {
		return fmt.Errorf("table %d record %d: %w", table, rec, ErrNotActive)
	}
	for fi, v := range vals {
		putU32(c.db.region, off+RecordHeaderSize+FieldSize*fi, v)
	}
	c.db.shadow.noteWrite(table, rec, c.pid, c.db.now())
	return nil
}

// WriteFld writes one field of an active record (DBwrite_fld).
func (c *Client) WriteFld(table, rec, field int, v uint32) error {
	defer c.db.guardEnter("DBwrite_fld")()
	defer c.db.mutate()()
	if c.closed {
		return ErrClosed
	}
	unlock, err := c.lockFor(table)
	if err != nil {
		return err
	}
	defer unlock()
	defer c.db.charge(OpWriteFld, c.pid, table, rec)
	td, off, err := c.locate(table, rec)
	if err != nil {
		return err
	}
	if field < 0 || field >= td.NumFields {
		return &BoundsError{What: "field", Index: field, Limit: td.NumFields}
	}
	if c.db.region[off+1] != StatusActive {
		return fmt.Errorf("table %d record %d: %w", table, rec, ErrNotActive)
	}
	putU32(c.db.region, off+RecordHeaderSize+FieldSize*field, v)
	c.db.shadow.noteWrite(table, rec, c.pid, c.db.now())
	return nil
}

// Move reassigns a record to another logical group (DBmove).
func (c *Client) Move(table, rec, newGroup int) error {
	defer c.db.guardEnter("DBmove")()
	defer c.db.mutate()()
	if c.closed {
		return ErrClosed
	}
	unlock, err := c.lockFor(table)
	if err != nil {
		return err
	}
	defer unlock()
	defer c.db.charge(OpMove, c.pid, table, rec)
	_, off, err := c.locate(table, rec)
	if err != nil {
		return err
	}
	if c.db.region[off+1] != StatusActive {
		return fmt.Errorf("table %d record %d: %w", table, rec, ErrNotActive)
	}
	if n := c.db.groupCount(table); n > 0 {
		// DBmove relinks the record between logical-group chains.
		if newGroup < 0 || newGroup >= n {
			return &BoundsError{What: "group", Index: newGroup, Limit: n}
		}
		if err := c.db.unlinkFromGroup(table, rec); err != nil {
			return err
		}
		if err := c.db.linkIntoGroup(table, rec, newGroup); err != nil {
			return err
		}
	} else {
		if newGroup < 0 || newGroup > 0xFFFF {
			return &BoundsError{What: "group", Index: newGroup, Limit: 0x10000}
		}
		putU16(c.db.region, off+4, uint16(newGroup))
	}
	c.db.shadow.noteWrite(table, rec, c.pid, c.db.now())
	return nil
}

// Alloc claims the first free record of table, assigns it to group, and
// returns its index. The pre-allocated table is a finite resource: records
// left allocated by failed clients are the "resource leaks" the semantic
// audit reclaims.
func (c *Client) Alloc(table, group int) (int, error) {
	defer c.db.guardEnter("DBalloc")()
	defer c.db.mutate()()
	if c.closed {
		return 0, ErrClosed
	}
	unlock, err := c.lockFor(table)
	if err != nil {
		return 0, err
	}
	defer unlock()
	defer c.db.charge(OpAlloc, c.pid, table, -1)
	td, err := readTableDesc(c.db.region, table)
	if err != nil {
		return 0, err
	}
	if n := c.db.groupCount(table); n > 0 && (group < 0 || group >= n) {
		return 0, &BoundsError{What: "group", Index: group, Limit: n}
	}
	for ri := 0; ri < td.NumRecords; ri++ {
		off, err := recordOffset(c.db.region, td, ri)
		if err != nil {
			return 0, err
		}
		if c.db.region[off+1] == StatusFree {
			c.db.region[off+1] = StatusActive
			if c.db.groupCount(table) > 0 {
				if err := c.db.linkIntoGroup(table, ri, group); err != nil {
					c.db.region[off+1] = StatusFree
					return 0, err
				}
			} else {
				putU16(c.db.region, off+4, uint16(group))
			}
			c.db.shadow.noteWrite(table, ri, c.pid, c.db.now())
			return ri, nil
		}
	}
	return 0, fmt.Errorf("table %d: %w", table, ErrNoFreeRecord)
}

// Free releases a record back to the table's free pool.
func (c *Client) Free(table, rec int) error {
	defer c.db.guardEnter("DBfree")()
	defer c.db.mutate()()
	if c.closed {
		return ErrClosed
	}
	unlock, err := c.lockFor(table)
	if err != nil {
		return err
	}
	defer unlock()
	defer c.db.charge(OpFree, c.pid, table, rec)
	td, off, err := c.locate(table, rec)
	if err != nil {
		return err
	}
	if c.db.groupCount(table) > 0 && c.db.region[off+1] == StatusActive {
		if err := c.db.unlinkFromGroup(table, rec); err != nil {
			return err
		}
	}
	formatHeader(c.db.region, off, table, rec)
	for fi := 0; fi < td.NumFields; fi++ {
		fd, err := readFieldDesc(c.db.region, td, fi)
		if err != nil {
			return err
		}
		putU32(c.db.region, off+RecordHeaderSize+FieldSize*fi, fd.Default)
	}
	c.db.shadow.noteWrite(table, rec, c.pid, c.db.now())
	return nil
}

// Status reports the header status byte of a record via the API path.
func (c *Client) Status(table, rec int) (int, error) {
	defer c.db.guardEnter("DBstatus")()
	if c.closed {
		return 0, ErrClosed
	}
	_, off, err := c.locate(table, rec)
	if err != nil {
		return 0, err
	}
	return int(c.db.region[off+1]), nil
}

// locate resolves (table, rec) through the on-region catalog, surfacing
// corruption as errors instead of wild addresses where detectable.
func (c *Client) locate(table, rec int) (tableDesc, int, error) {
	td, err := readTableDesc(c.db.region, table)
	if err != nil {
		return tableDesc{}, 0, err
	}
	off, err := recordOffset(c.db.region, td, rec)
	if err != nil {
		return tableDesc{}, 0, err
	}
	return td, off, nil
}

// LastChargedCost returns the most recent charge for op — a convenience
// for workload code accumulating call setup time.
func (c *Client) LastChargedCost(op Op) time.Duration {
	return c.db.costs.Cost(op, c.db.audited)
}
