package memdb_test

import (
	"fmt"

	"repro/internal/memdb"
)

// Example shows the Table 1 API surface: connect, allocate a record into a
// logical group, write, read back, move between groups, and free.
func Example() {
	schema := memdb.Schema{Tables: []memdb.TableSpec{{
		Name: "Resource", Dynamic: true, NumRecords: 8, Groups: 2,
		Fields: []memdb.FieldSpec{
			{Name: "Owner", Kind: memdb.Dynamic, HasRange: true, Min: 0, Max: 99, Default: 0},
			{Name: "Load", Kind: memdb.Dynamic, HasRange: true, Min: 0, Max: 10, Default: 0},
		},
	}}}
	db, err := memdb.New(schema)
	if err != nil {
		fmt.Println("new:", err)
		return
	}
	c, _ := db.Connect() // DBinit

	ri, _ := c.Alloc(0, 0)                 // claim a record in group 0
	_ = c.WriteRec(0, ri, []uint32{42, 7}) // DBwrite_rec
	owner, _ := c.ReadFld(0, ri, 0)        // DBread_fld
	_ = c.Move(0, ri, 1)                   // DBmove: relink to group 1
	records, ok, _ := db.WalkGroup(0, 1)   // audit-side chain walk
	fmt.Println("owner:", owner, "group 1:", records, "chains ok:", ok)

	_ = c.Free(0, ri)
	_ = c.Close() // DBclose
	// Output:
	// owner: 42 group 1: [0] chains ok: true
}
