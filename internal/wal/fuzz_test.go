package wal

import (
	"bytes"
	"testing"
)

// FuzzWALDecode drives the frame decoder with arbitrary bytes. The decoder
// must never panic, must never consume a frame whose CRC does not match,
// and every record it does accept must re-encode to the exact bytes it was
// decoded from (the codec is canonical — the same property FuzzCodec pins
// for the wire protocol).
func FuzzWALDecode(f *testing.F) {
	f.Add(AppendRecord(nil, Record{Seq: 1, Trace: 7, Op: OpAlloc, Table: 3, Rec: 5, Field: -1, Aux: 2}))
	f.Add(AppendRecord(nil, Record{Seq: 2, Op: OpWriteRec, Table: 3, Rec: 5, Vals: []uint32{1, 2, 3}}))
	multi := AppendRecord(nil, Record{Seq: 1, Op: OpWriteFld, Table: 1, Rec: 0, Field: 2, Vals: []uint32{9}})
	multi = AppendRecord(multi, Record{Seq: 2, Op: OpFree, Table: 1, Rec: 0})
	f.Add(multi)
	f.Add(multi[:len(multi)-3]) // torn tail
	corrupt := AppendRecord(nil, Record{Seq: 3, Op: OpMove, Table: 2, Rec: 1, Aux: 1})
	corrupt[5] ^= 0x40 // CRC mismatch
	f.Add(corrupt)
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0x7F, 0, 0, 0, 0}) // wild length prefix

	f.Fuzz(func(t *testing.T, data []byte) {
		dec := NewDecoder(data)
		for i := 0; i < 1<<16; i++ {
			start := dec.Offset()
			rec, err := dec.Next()
			if err != nil {
				if dec.Offset() != start {
					t.Fatalf("decoder advanced %d bytes past an error", dec.Offset()-start)
				}
				return
			}
			frame := data[start:dec.Offset()]
			if got := AppendRecord(nil, rec); !bytes.Equal(got, frame) {
				t.Fatalf("record %d re-encodes to %d bytes, consumed %d", i, len(got), len(frame))
			}
		}
	})
}
