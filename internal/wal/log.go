package wal

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// File naming. Segments carry the sequence number of the first record they
// may contain; a checkpoint file carries the sequence it captured.
const (
	segSuffix  = ".seg"
	ckptSuffix = ".ck"
	ckptMagic  = 0x434B5054 // "CKPT"
)

func segName(firstSeq uint64) string { return fmt.Sprintf("wal-%016x%s", firstSeq, segSuffix) }
func ckptName(seq uint64) string     { return fmt.Sprintf("ckpt-%016x%s", seq, ckptSuffix) }
func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	v, err := strconv.ParseUint(name[len(prefix):len(name)-len(suffix)], 16, 64)
	return v, err == nil
}

// Config sizes the log.
type Config struct {
	// Dir is the log directory, created if absent.
	Dir string
	// SegmentCap rotates the active segment once it exceeds this many
	// bytes. Default 1 MiB.
	SegmentCap int
	// TailCap bounds the in-memory tail ring serving replication, in
	// records. Default 8192.
	TailCap int
}

func (c *Config) fill() {
	if c.SegmentCap <= 0 {
		c.SegmentCap = 1 << 20
	}
	if c.TailCap <= 0 {
		c.TailCap = 8192
	}
}

// Log is the append side of the WAL. Append, Sync, Checkpoint, and Close are
// single-writer calls (the server's executor); Since, the seq accessors, and
// the metrics callbacks are safe from any goroutine — replication reads the
// tail ring under its own mutex and never touches the file, so shipping the
// log cannot stall the serving path.
type Log struct {
	cfg Config

	// Executor-owned write state.
	f       *os.File
	bw      *bufio.Writer
	segSize int
	scratch []byte
	closed  bool

	// Tail ring serving Since; guarded by mu.
	mu   sync.Mutex
	tail []Record

	// Cross-thread counters.
	lastSeq   atomic.Uint64
	syncedSeq atomic.Uint64
	ckptSeq   atomic.Uint64
	pending   atomic.Int64 // records appended since last Sync
	sinceCkpt atomic.Int64 // bytes appended since last checkpoint
	segments  atomic.Int64
	appended  atomic.Uint64
	synced    atomic.Uint64
	ckpts     atomic.Uint64

	fsyncHist *metrics.Histogram // nil until BindMetrics
}

// Open creates or reopens a log directory for appending. startSeq is the
// sequence number of the last durable record (0 for a fresh log — typically
// RecoverResult.LastSeq); appending always begins in a new segment so a
// previously torn tail is never extended.
func Open(cfg Config, startSeq uint64) (*Log, error) {
	cfg.fill()
	if cfg.Dir == "" {
		return nil, fmt.Errorf("wal: empty directory")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{cfg: cfg}
	l.lastSeq.Store(startSeq)
	l.syncedSeq.Store(startSeq)
	if err := l.openSegment(startSeq + 1); err != nil {
		return nil, err
	}
	l.segments.Store(int64(len(listFiles(cfg.Dir, "wal-", segSuffix))))
	return l, nil
}

func (l *Log) openSegment(firstSeq uint64) error {
	f, err := os.OpenFile(filepath.Join(l.cfg.Dir, segName(firstSeq)),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: open segment: %w", err)
	}
	if st, err := f.Stat(); err == nil {
		l.segSize = int(st.Size())
	} else {
		l.segSize = 0
	}
	l.f = f
	l.bw = bufio.NewWriterSize(f, 64<<10)
	return nil
}

// Append writes one record to the log buffer and tail ring, assigning the
// next sequence number when r.Seq is zero. A non-zero r.Seq (replica apply
// preserving the primary's numbering) must be exactly lastSeq+1. The record
// is not durable until the next Sync. Executor thread only.
func (l *Log) Append(r Record) (uint64, error) {
	if l.closed {
		return 0, fmt.Errorf("wal: log closed")
	}
	next := l.lastSeq.Load() + 1
	if r.Seq == 0 {
		r.Seq = next
	} else if r.Seq != next {
		return 0, fmt.Errorf("wal: append seq %d, want %d", r.Seq, next)
	}
	if len(r.Vals) > MaxVals {
		return 0, fmt.Errorf("wal: %d values exceeds cap %d", len(r.Vals), MaxVals)
	}
	l.scratch = AppendRecord(l.scratch[:0], r)
	if l.segSize > 0 && l.segSize+len(l.scratch) > l.cfg.SegmentCap {
		if err := l.rotate(r.Seq); err != nil {
			return 0, err
		}
	}
	if _, err := l.bw.Write(l.scratch); err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	l.segSize += len(l.scratch)
	l.sinceCkpt.Add(int64(len(l.scratch)))
	l.lastSeq.Store(r.Seq)
	l.pending.Add(1)
	l.appended.Add(1)

	l.mu.Lock()
	l.tail = append(l.tail, r)
	if over := len(l.tail) - l.cfg.TailCap; over > 0 {
		l.tail = append(l.tail[:0:0], l.tail[over:]...)
	}
	l.mu.Unlock()
	return r.Seq, nil
}

// rotate syncs and closes the active segment and starts a new one whose
// name records firstSeq.
func (l *Log) rotate(firstSeq uint64) error {
	if err := l.flushSync(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: close segment: %w", err)
	}
	if err := l.openSegment(firstSeq); err != nil {
		return err
	}
	l.segments.Add(1)
	return nil
}

func (l *Log) flushSync() error {
	if err := l.bw.Flush(); err != nil {
		return fmt.Errorf("wal: flush: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	return nil
}

// Sync flushes buffered records and fsyncs the segment. The server calls it
// on the executor clock tick, batching every append since the previous tick
// into one fsync. Executor thread only.
func (l *Log) Sync() error {
	if l.closed {
		return fmt.Errorf("wal: log closed")
	}
	n := l.pending.Load()
	if n == 0 && l.bw.Buffered() == 0 {
		return nil
	}
	t0 := time.Now()
	if err := l.flushSync(); err != nil {
		return err
	}
	if l.fsyncHist != nil {
		l.fsyncHist.ObserveSince(t0)
	}
	l.syncedSeq.Store(l.lastSeq.Load())
	l.pending.Add(-n)
	l.synced.Add(uint64(n))
	return nil
}

// LastSeq returns the highest appended sequence number.
func (l *Log) LastSeq() uint64 { return l.lastSeq.Load() }

// SyncedSeq returns the highest fsynced sequence number.
func (l *Log) SyncedSeq() uint64 { return l.syncedSeq.Load() }

// CheckpointSeq returns the sequence captured by the latest checkpoint.
func (l *Log) CheckpointSeq() uint64 { return l.ckptSeq.Load() }

// Pending returns the number of appended-but-not-fsynced records.
func (l *Log) Pending() int64 { return l.pending.Load() }

// SizeSinceCheckpoint returns bytes logged since the last checkpoint — the
// server's trigger for writing the next one.
func (l *Log) SizeSinceCheckpoint() int64 { return l.sinceCkpt.Load() }

// Since returns the framed records with sequence numbers in (afterSeq,
// LastSeq], up to maxBytes, from the in-memory tail ring. ok is false when
// afterSeq has already fallen off the ring — the caller must re-bootstrap
// from a checkpoint. Safe from any goroutine; never touches the file.
func (l *Log) Since(afterSeq uint64, maxBytes int) (blob []byte, lastSeq uint64, ok bool) {
	lastSeq = l.lastSeq.Load()
	l.mu.Lock()
	defer l.mu.Unlock()
	if afterSeq >= lastSeq {
		return nil, lastSeq, true
	}
	if len(l.tail) == 0 || afterSeq+1 < l.tail[0].Seq {
		return nil, lastSeq, false // gap: requested records evicted from the ring
	}
	i := sort.Search(len(l.tail), func(i int) bool { return l.tail[i].Seq > afterSeq })
	for ; i < len(l.tail); i++ {
		if maxBytes > 0 && len(blob) > 0 && len(blob)+EncodedSize(l.tail[i]) > maxBytes {
			break
		}
		blob = AppendRecord(blob, l.tail[i])
	}
	return blob, lastSeq, true
}

// Checkpoint syncs the log, captures the state written by snapshot (the
// executor-thread region serializer), persists it crash-safely
// (temp + fsync + rename), prunes segments wholly covered by it, and removes
// older checkpoints. Executor thread only.
//
// Checkpoint file format: u32 magic | u64 seq | u32 body-len | body |
// u32 crc32(seq … body).
func (l *Log) Checkpoint(snapshot func(w io.Writer) error) error {
	if err := l.Sync(); err != nil {
		return err
	}
	var body bytes.Buffer
	if err := snapshot(&body); err != nil {
		return fmt.Errorf("wal: checkpoint snapshot: %w", err)
	}
	return l.InstallCheckpoint(l.lastSeq.Load(), body.Bytes())
}

// InstallCheckpoint persists body as the checkpoint for seq. The replica
// applier uses it directly after bootstrapping from a shipped snapshot,
// where body arrived off the wire and seq is the primary's. Executor thread
// only. lastSeq advances to seq if behind (a fresh standby log).
func (l *Log) InstallCheckpoint(seq uint64, body []byte) error {
	hdr := make([]byte, 16)
	binary.LittleEndian.PutUint32(hdr[0:4], ckptMagic)
	binary.LittleEndian.PutUint64(hdr[4:12], seq)
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(len(body)))
	crc := crc32.ChecksumIEEE(hdr[4:16])
	crc = crc32.Update(crc, crc32.IEEETable, body)
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc)

	tmp := filepath.Join(l.cfg.Dir, ckptName(seq)+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	_, err = f.Write(hdr)
	if err == nil {
		_, err = f.Write(body)
	}
	if err == nil {
		_, err = f.Write(tail[:])
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(l.cfg.Dir, ckptName(seq))); err != nil {
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	if l.lastSeq.Load() < seq {
		l.lastSeq.Store(seq)
		l.syncedSeq.Store(seq)
	}
	l.ckptSeq.Store(seq)
	l.sinceCkpt.Store(0)
	l.ckpts.Add(1)
	l.prune(seq)
	return nil
}

// prune removes checkpoints older than seq and segments whose records are
// all ≤ seq (every segment except the last whose successor starts at or
// before seq+1).
func (l *Log) prune(seq uint64) {
	for _, name := range listFiles(l.cfg.Dir, "ckpt-", ckptSuffix) {
		if s, ok := parseSeq(name, "ckpt-", ckptSuffix); ok && s < seq {
			os.Remove(filepath.Join(l.cfg.Dir, name))
		}
	}
	segs := listFiles(l.cfg.Dir, "wal-", segSuffix)
	for i := 0; i+1 < len(segs); i++ {
		next, ok := parseSeq(segs[i+1], "wal-", segSuffix)
		if !ok || next > seq+1 {
			break
		}
		if os.Remove(filepath.Join(l.cfg.Dir, segs[i])) == nil {
			l.segments.Add(-1)
		}
	}
}

// Close syncs and closes the active segment. Further appends fail.
func (l *Log) Close() error {
	if l.closed {
		return nil
	}
	err := l.Sync()
	l.closed = true
	if cerr := l.f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("wal: close: %w", cerr)
	}
	return err
}

// BindMetrics registers the log's gauges and the fsync latency histogram.
func (l *Log) BindMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	reg.GaugeFunc("wal.flush_pending", l.pending.Load)
	reg.GaugeFunc("wal.last_seq", func() int64 { return int64(l.lastSeq.Load()) })
	reg.GaugeFunc("wal.synced_seq", func() int64 { return int64(l.syncedSeq.Load()) })
	reg.GaugeFunc("wal.segments", l.segments.Load)
	reg.GaugeFunc("wal.appended", func() int64 { return int64(l.appended.Load()) })
	reg.GaugeFunc("wal.checkpoints", func() int64 { return int64(l.ckpts.Load()) })
	l.fsyncHist = reg.Histogram("wal.fsync", metrics.LatencyBuckets())
}

// listFiles returns the matching names in dir, sorted ascending (the hex
// seq encoding makes lexical order numeric order).
func listFiles(dir, prefix, suffix string) []string {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var out []string
	for _, e := range ents {
		if _, ok := parseSeq(e.Name(), prefix, suffix); ok {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out
}
