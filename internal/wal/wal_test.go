package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/callproc"
	"repro/internal/memdb"
)

func testSchema() memdb.Schema {
	return callproc.Schema(callproc.SchemaConfig{ConfigRecords: 4, ConfigFields: 4, CallRecords: 16})
}

func TestRecordRoundtrip(t *testing.T) {
	recs := []Record{
		{Seq: 1, Trace: 42, Op: OpAlloc, Table: 3, Rec: 7, Field: -1, Aux: 2},
		{Seq: 2, Op: OpWriteRec, Table: 3, Rec: 7, Field: -1, Aux: -1, Vals: []uint32{1, 2, 3}},
		{Seq: 3, Trace: 99, Op: OpWriteFld, Table: 1, Rec: 0, Field: 1, Vals: []uint32{0xDEADBEEF}},
		{Seq: 4, Op: OpMove, Table: 3, Rec: 7, Aux: 1},
		{Seq: 5, Op: OpFree, Table: 3, Rec: 7},
	}
	var buf []byte
	for _, r := range recs {
		buf = AppendRecord(buf, r)
	}
	dec := NewDecoder(buf)
	for i, want := range recs {
		got, err := dec.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got.Seq != want.Seq || got.Trace != want.Trace || got.Op != want.Op ||
			got.Table != want.Table || got.Rec != want.Rec || got.Field != want.Field ||
			got.Aux != want.Aux || len(got.Vals) != len(want.Vals) {
			t.Fatalf("record %d: got %+v want %+v", i, got, want)
		}
		for j := range want.Vals {
			if got.Vals[j] != want.Vals[j] {
				t.Fatalf("record %d val %d: got %d want %d", i, j, got.Vals[j], want.Vals[j])
			}
		}
	}
	if _, err := dec.Next(); err == nil {
		t.Fatal("decoder did not end")
	}
}

func TestDecoderTorn(t *testing.T) {
	good := AppendRecord(nil, Record{Seq: 1, Op: OpFree, Table: 1, Rec: 2})
	cases := map[string][]byte{
		"half header":  good[:4],
		"half payload": good[:len(good)-3],
		"bad crc": func() []byte {
			b := append([]byte(nil), good...)
			b[5] ^= 0xFF
			return b
		}(),
		"bad op": func() []byte {
			b := AppendRecord(nil, Record{Seq: 1, Op: 0, Table: 1})
			return b
		}(),
		"wild length": func() []byte {
			b := append([]byte(nil), good...)
			b[0] = 0xFF
			b[1] = 0xFF
			b[2] = 0xFF
			return b
		}(),
	}
	for name, buf := range cases {
		dec := NewDecoder(buf)
		if _, err := dec.Next(); err == nil {
			t.Errorf("%s: decoded a corrupt frame", name)
		} else if dec.Offset() != 0 {
			t.Errorf("%s: offset advanced to %d past corruption", name, dec.Offset())
		}
	}
}

// driveOps performs a deterministic op mix through the API while logging
// each mutation, mirroring what the server executor does.
func driveOps(t *testing.T, db *memdb.DB, l *Log, n int) {
	t.Helper()
	c, err := db.Connect()
	if err != nil {
		t.Fatal(err)
	}
	logIt := func(r Record) {
		t.Helper()
		if _, err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	var live []int
	for i := 0; i < n; i++ {
		switch {
		case len(live) < 4 || i%5 == 0:
			g := i % callproc.ResourceBanks
			ri, err := c.Alloc(callproc.TblRes, g)
			if err != nil {
				break // table full: fine, keep mixing
			}
			live = append(live, ri)
			logIt(Record{Op: OpAlloc, Table: callproc.TblRes, Rec: int32(ri), Aux: int32(g)})
		case i%5 == 1:
			ri := live[i%len(live)]
			vals := []uint32{uint32(i % 16), uint32(i % 3), uint32(i % 101)}
			if err := c.WriteRec(callproc.TblRes, ri, vals); err != nil {
				t.Fatal(err)
			}
			logIt(Record{Op: OpWriteRec, Table: callproc.TblRes, Rec: int32(ri), Vals: vals})
		case i%5 == 2:
			ri := live[i%len(live)]
			v := uint32(i % 101)
			if err := c.WriteFld(callproc.TblRes, ri, callproc.FldResQuality, v); err != nil {
				t.Fatal(err)
			}
			logIt(Record{Op: OpWriteFld, Table: callproc.TblRes, Rec: int32(ri),
				Field: callproc.FldResQuality, Vals: []uint32{v}})
		case i%5 == 3:
			ri := live[i%len(live)]
			g := (i + 1) % callproc.ResourceBanks
			if err := c.Move(callproc.TblRes, ri, g); err != nil {
				t.Fatal(err)
			}
			logIt(Record{Op: OpMove, Table: callproc.TblRes, Rec: int32(ri), Aux: int32(g)})
		default:
			ri := live[0]
			live = live[1:]
			if err := c.Free(callproc.TblRes, ri); err != nil {
				t.Fatal(err)
			}
			logIt(Record{Op: OpFree, Table: callproc.TblRes, Rec: int32(ri)})
		}
	}
}

func TestAppendRecoverRoundtrip(t *testing.T) {
	dir := t.TempDir()
	schema := testSchema()
	db, err := memdb.New(schema)
	if err != nil {
		t.Fatal(err)
	}
	// A small segment cap forces several rotations over the run.
	l, err := Open(Config{Dir: dir, SegmentCap: 512}, 0)
	if err != nil {
		t.Fatal(err)
	}
	driveOps(t, db, l, 120)
	last := l.LastSeq()
	if last == 0 {
		t.Fatal("nothing logged")
	}
	if l.Pending() == 0 {
		t.Fatal("expected unsynced records before Sync")
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if l.Pending() != 0 || l.SyncedSeq() != last {
		t.Fatalf("after sync: pending=%d synced=%d last=%d", l.Pending(), l.SyncedSeq(), last)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if segs := listFiles(dir, "wal-", segSuffix); len(segs) < 2 {
		t.Fatalf("segment cap 512 produced only %d segments", len(segs))
	}

	res, err := Recover(dir, schema)
	if err != nil {
		t.Fatal(err)
	}
	if res.LastSeq != last || res.Replayed != int(last) || res.Skipped != 0 || res.Truncated {
		t.Fatalf("recover: %+v, want last=%d", res, last)
	}
	if !bytes.Equal(res.DB.Raw(), db.Raw()) {
		t.Fatal("recovered region differs from live region")
	}
}

func TestRecoverTornTail(t *testing.T) {
	dir := t.TempDir()
	schema := testSchema()
	db, err := memdb.New(schema)
	if err != nil {
		t.Fatal(err)
	}
	l, err := Open(Config{Dir: dir}, 0)
	if err != nil {
		t.Fatal(err)
	}
	driveOps(t, db, l, 60)
	last := l.LastSeq()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the final record: chop three bytes off the single segment, as a
	// crash mid-write would.
	segs := listFiles(dir, "wal-", segSuffix)
	path := filepath.Join(dir, segs[len(segs)-1])
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, st.Size()-3); err != nil {
		t.Fatal(err)
	}

	res, err := Recover(dir, schema)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Fatal("torn tail not reported")
	}
	if res.LastSeq != last-1 {
		t.Fatalf("recovered through seq %d, want %d", res.LastSeq, last-1)
	}
	// The recovered state must equal a model built from the first last-1
	// records alone.
	model, err := memdb.New(schema)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	dec := NewDecoder(buf)
	for {
		rec, derr := dec.Next()
		if derr != nil {
			break
		}
		if err := Apply(model, rec); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(res.DB.Raw(), model.Raw()) {
		t.Fatal("recovered region differs from model of surviving records")
	}
	// The file was physically cut: a second recovery sees a clean log.
	res2, err := Recover(dir, schema)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Truncated || res2.LastSeq != last-1 {
		t.Fatalf("second recovery: %+v", res2)
	}
}

func TestCheckpointPruneAndRecover(t *testing.T) {
	dir := t.TempDir()
	schema := testSchema()
	db, err := memdb.New(schema)
	if err != nil {
		t.Fatal(err)
	}
	l, err := Open(Config{Dir: dir, SegmentCap: 512}, 0)
	if err != nil {
		t.Fatal(err)
	}
	driveOps(t, db, l, 80)
	if err := l.Checkpoint(db.SnapshotInto); err != nil {
		t.Fatal(err)
	}
	ckSeq := l.CheckpointSeq()
	if ckSeq != l.LastSeq() {
		t.Fatalf("checkpoint seq %d, last %d", ckSeq, l.LastSeq())
	}
	if l.SizeSinceCheckpoint() != 0 {
		t.Fatal("checkpoint did not reset the size trigger")
	}
	if segs := listFiles(dir, "wal-", segSuffix); len(segs) != 1 {
		t.Fatalf("prune left %d segments", len(segs))
	}
	driveOps(t, db, l, 40)
	last := l.LastSeq()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	res, err := Recover(dir, schema)
	if err != nil {
		t.Fatal(err)
	}
	if res.CheckpointSeq != ckSeq {
		t.Fatalf("recovered from checkpoint %d, want %d", res.CheckpointSeq, ckSeq)
	}
	if res.LastSeq != last || res.Replayed != int(last-ckSeq) {
		t.Fatalf("recover: %+v, want last=%d replayed=%d", res, last, last-ckSeq)
	}
	if !bytes.Equal(res.DB.Raw(), db.Raw()) {
		t.Fatal("checkpoint+tail recovery differs from live region")
	}
}

func TestSinceTailAndGap(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Config{Dir: dir, TailCap: 8}, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 20; i++ {
		if _, err := l.Append(Record{Op: OpFree, Table: 1, Rec: int32(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, ok := l.Since(0, 0); ok {
		t.Fatal("evicted range did not report a gap")
	}
	blob, last, ok := l.Since(15, 0)
	if !ok || last != 20 {
		t.Fatalf("Since(15): ok=%v last=%d", ok, last)
	}
	dec := NewDecoder(blob)
	want := uint64(16)
	for {
		rec, err := dec.Next()
		if err != nil {
			break
		}
		if rec.Seq != want {
			t.Fatalf("shipped seq %d, want %d", rec.Seq, want)
		}
		want++
	}
	if want != 21 {
		t.Fatalf("shipped through %d, want 20", want-1)
	}
	// Caught-up pollers get an empty batch, not a gap.
	if blob, _, ok := l.Since(20, 0); !ok || blob != nil {
		t.Fatalf("caught-up Since: blob=%v ok=%v", blob, ok)
	}
	// maxBytes bounds the batch but always makes progress.
	blob, _, ok = l.Since(12, 1)
	if !ok {
		t.Fatal("bounded Since reported a gap")
	}
	dec = NewDecoder(blob)
	rec, err := dec.Next()
	if err != nil || rec.Seq != 13 {
		t.Fatalf("bounded batch first seq: %v %v", rec.Seq, err)
	}
}

func TestInstallCheckpointStandbyNumbering(t *testing.T) {
	dir := t.TempDir()
	schema := testSchema()
	db, err := memdb.New(schema)
	if err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := db.SnapshotInto(&snap); err != nil {
		t.Fatal(err)
	}
	l, err := Open(Config{Dir: dir}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A standby bootstrapping at primary seq 10 installs the shipped
	// snapshot, then appends with the primary's numbering.
	if err := l.InstallCheckpoint(10, snap.Bytes()); err != nil {
		t.Fatal(err)
	}
	if l.LastSeq() != 10 {
		t.Fatalf("lastSeq %d after checkpoint install", l.LastSeq())
	}
	if _, err := l.Append(Record{Seq: 11, Op: OpAlloc, Table: callproc.TblRes, Rec: 0, Aux: 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(Record{Seq: 13, Op: OpFree, Table: callproc.TblRes, Rec: 0}); err == nil {
		t.Fatal("gap in explicit numbering accepted")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := Recover(dir, schema)
	if err != nil {
		t.Fatal(err)
	}
	if res.CheckpointSeq != 10 || res.LastSeq != 11 || res.Replayed != 1 {
		t.Fatalf("standby recovery: %+v", res)
	}
}
