package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"repro/internal/memdb"
)

// RecoverResult describes a completed recovery.
type RecoverResult struct {
	// DB is the rebuilt database: the schema's pristine image, overlaid
	// with the newest valid checkpoint, with the log tail replayed on top.
	DB *memdb.DB
	// CheckpointSeq is the sequence of the checkpoint used (0 if none).
	CheckpointSeq uint64
	// LastSeq is the sequence of the last replayed record (or the
	// checkpoint's, when the tail was empty).
	LastSeq uint64
	// Replayed counts records applied from the log tail.
	Replayed int
	// Skipped counts records that decoded but failed to apply.
	Skipped int
	// Truncated is true when a torn or corrupt record ended replay early
	// and the log was physically cut at that point.
	Truncated bool
}

// Recover rebuilds database state from dir: load the newest valid
// checkpoint into a fresh DB for schema (the pristine seed snapshot is
// preserved, so static-image reload recovery keeps working), then replay
// every log record past the checkpoint in sequence order. The first torn or
// corrupt record ends replay; the containing segment is truncated there and
// later segments are removed, so a subsequent Open never resurrects
// unreachable records. An empty or missing dir yields a pristine DB with
// LastSeq 0.
func Recover(dir string, schema memdb.Schema, opts ...memdb.Option) (*RecoverResult, error) {
	db, err := memdb.New(schema, opts...)
	if err != nil {
		return nil, err
	}
	res := &RecoverResult{DB: db}
	if _, err := os.Stat(dir); os.IsNotExist(err) {
		return res, nil
	}

	// Newest valid checkpoint wins; invalid ones are skipped, not fatal.
	ckpts := listFiles(dir, "ckpt-", ckptSuffix)
	for i := len(ckpts) - 1; i >= 0; i-- {
		body, seq, err := readCheckpoint(filepath.Join(dir, ckpts[i]))
		if err != nil {
			continue
		}
		if err := db.RestoreFrom(bytes.NewReader(body)); err != nil {
			continue
		}
		res.CheckpointSeq = seq
		res.LastSeq = seq
		break
	}

	for si, name := range listFiles(dir, "wal-", segSuffix) {
		path := filepath.Join(dir, name)
		buf, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("wal: read segment %s: %w", name, err)
		}
		dec := NewDecoder(buf)
		for {
			rec, err := dec.Next()
			if err != nil {
				if err == io.EOF {
					break
				}
				// Torn tail: cut the segment at the last good frame and
				// drop any later segments — their records are unreachable
				// past the tear.
				if terr := os.Truncate(path, int64(dec.Offset())); terr != nil {
					return nil, fmt.Errorf("wal: truncate %s: %w", name, terr)
				}
				res.Truncated = true
				for _, later := range listFiles(dir, "wal-", segSuffix)[si+1:] {
					os.Remove(filepath.Join(dir, later))
				}
				return res, nil
			}
			if rec.Seq <= res.LastSeq {
				continue // covered by the checkpoint (or a replayed duplicate)
			}
			if err := Apply(db, rec); err != nil {
				res.Skipped++
			} else {
				res.Replayed++
			}
			res.LastSeq = rec.Seq
		}
	}
	return res, nil
}

// readCheckpoint loads and validates one checkpoint file.
func readCheckpoint(path string) (body []byte, seq uint64, err error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	if len(buf) < 20 {
		return nil, 0, fmt.Errorf("wal: checkpoint %s truncated", path)
	}
	if m := binary.LittleEndian.Uint32(buf[0:4]); m != ckptMagic {
		return nil, 0, fmt.Errorf("wal: checkpoint %s bad magic %#x", path, m)
	}
	seq = binary.LittleEndian.Uint64(buf[4:12])
	n := int(binary.LittleEndian.Uint32(buf[12:16]))
	if len(buf) != 16+n+4 {
		return nil, 0, fmt.Errorf("wal: checkpoint %s length %d, want %d", path, len(buf), 16+n+4)
	}
	body = buf[16 : 16+n]
	crc := crc32.ChecksumIEEE(buf[4:16])
	crc = crc32.Update(crc, crc32.IEEETable, body)
	if got := binary.LittleEndian.Uint32(buf[16+n:]); got != crc {
		return nil, 0, fmt.Errorf("wal: checkpoint %s crc %#x, want %#x", path, got, crc)
	}
	return body, seq, nil
}

// Apply replays one record against db using the direct mutators. Audit
// repairs are deliberately never logged: replay from a clean checkpoint
// plus valid client operations reconstructs uncorrupted state, which is the
// whole point of recovering from the log rather than copying the region.
func Apply(db *memdb.DB, r Record) error {
	ti, ri := int(r.Table), int(r.Rec)
	switch r.Op {
	case OpWriteRec:
		return db.WriteRecDirect(ti, ri, r.Vals)
	case OpWriteFld:
		if len(r.Vals) != 1 {
			return fmt.Errorf("wal: write-fld carries %d values", len(r.Vals))
		}
		if err := db.WriteFieldDirect(ti, ri, int(r.Field), r.Vals[0]); err != nil {
			return err
		}
		db.TouchVersion(ti, ri)
		return nil
	case OpMove:
		return db.MoveDirect(ti, ri, int(r.Aux))
	case OpAlloc:
		return db.AllocDirect(ti, ri, int(r.Aux))
	case OpFree:
		return db.FreeRecordDirect(ti, ri)
	default:
		return fmt.Errorf("wal: unknown op %d", r.Op)
	}
}
