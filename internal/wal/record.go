// Package wal implements the durability layer: an append-only operation log
// of mutating database operations with CRC32-framed, length-prefixed
// records, segment rotation, batched fsync driven by the server's executor
// clock, checkpoints of the live region, and a replayer that rebuilds a
// memdb.DB from the last checkpoint plus the log tail, truncating at the
// first torn or corrupt record.
//
// The log extends the paper's recovery escalation (correct element → reload
// extent → reload all → restart) with the level the real controller had:
// state survives the process. Per-record CRC framing follows the
// integrity-coding discipline of Kondratyuk et al.; the in-memory tail ring
// that serves replication without touching the writer path is the resource
// isolation argued for by Jiang et al.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Op identifies the logged mutation. Only operations that change the region
// are logged; sessions, locks, and reads are transient and rebuilt by
// clients after recovery.
type Op uint8

const (
	OpWriteRec Op = iota + 1 // write all fields
	OpWriteFld               // write one field
	OpMove                   // relink to another logical group
	OpAlloc                  // activate a record (chosen index in Rec)
	OpFree                   // release a record
	opMax
)

var opNames = [...]string{"", "write-rec", "write-fld", "move", "alloc", "free"}

func (o Op) String() string {
	if o >= 1 && int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Record is one logged mutation. Seq is the log sequence number, assigned
// contiguously; Trace carries the flight-recorder trace ID of the request
// that produced the mutation, so a recovered or replicated write joins the
// same journal thread as its origin.
type Record struct {
	Seq   uint64
	Trace uint64
	Op    Op
	Table int32
	Rec   int32
	Field int32
	Aux   int32
	Vals  []uint32
}

// Frame layout: u32 payload-len | u32 crc32(payload) | payload.
// Payload layout: u64 seq | u64 trace | u8 op | i32 table | i32 rec |
// i32 field | i32 aux | u16 n | n × u32 vals.
const (
	frameHeader = 8
	recFixed    = 8 + 8 + 1 + 16 + 2
	// MaxVals bounds the value vector, mirroring the wire protocol's cap.
	MaxVals = 1 << 14
	// maxPayload is the largest legal payload length.
	maxPayload = recFixed + 4*MaxVals
)

// ErrTorn marks the first unreadable point of a log: a truncated frame, an
// out-of-range length prefix, a CRC mismatch, or a malformed payload. Replay
// stops (and truncates the file) there.
var ErrTorn = errors.New("wal: torn or corrupt record")

// AppendRecord appends r's encoded frame to dst and returns the result.
func AppendRecord(dst []byte, r Record) []byte {
	payload := recFixed + 4*len(r.Vals)
	start := len(dst)
	dst = append(dst, make([]byte, frameHeader+payload)...)
	b := dst[start:]
	binary.LittleEndian.PutUint32(b[0:4], uint32(payload))
	p := b[frameHeader:]
	binary.LittleEndian.PutUint64(p[0:8], r.Seq)
	binary.LittleEndian.PutUint64(p[8:16], r.Trace)
	p[16] = byte(r.Op)
	binary.LittleEndian.PutUint32(p[17:21], uint32(r.Table))
	binary.LittleEndian.PutUint32(p[21:25], uint32(r.Rec))
	binary.LittleEndian.PutUint32(p[25:29], uint32(r.Field))
	binary.LittleEndian.PutUint32(p[29:33], uint32(r.Aux))
	binary.LittleEndian.PutUint16(p[33:35], uint16(len(r.Vals)))
	for i, v := range r.Vals {
		binary.LittleEndian.PutUint32(p[recFixed+4*i:], v)
	}
	binary.LittleEndian.PutUint32(b[4:8], crc32.ChecksumIEEE(p))
	return dst
}

// EncodedSize returns the framed length of r in bytes.
func EncodedSize(r Record) int { return frameHeader + recFixed + 4*len(r.Vals) }

// DecodePayload parses one payload (the bytes covered by the CRC). It is
// strict: the payload length must match the declared value count exactly.
func DecodePayload(p []byte) (Record, error) {
	if len(p) < recFixed {
		return Record{}, fmt.Errorf("%w: payload %d bytes, need %d", ErrTorn, len(p), recFixed)
	}
	var r Record
	r.Seq = binary.LittleEndian.Uint64(p[0:8])
	r.Trace = binary.LittleEndian.Uint64(p[8:16])
	r.Op = Op(p[16])
	if r.Op < 1 || r.Op >= opMax {
		return Record{}, fmt.Errorf("%w: unknown op %d", ErrTorn, p[16])
	}
	r.Table = int32(binary.LittleEndian.Uint32(p[17:21]))
	r.Rec = int32(binary.LittleEndian.Uint32(p[21:25]))
	r.Field = int32(binary.LittleEndian.Uint32(p[25:29]))
	r.Aux = int32(binary.LittleEndian.Uint32(p[29:33]))
	n := int(binary.LittleEndian.Uint16(p[33:35]))
	if n > MaxVals {
		return Record{}, fmt.Errorf("%w: %d values exceeds cap %d", ErrTorn, n, MaxVals)
	}
	if len(p) != recFixed+4*n {
		return Record{}, fmt.Errorf("%w: payload %d bytes for %d values", ErrTorn, len(p), n)
	}
	if n > 0 {
		r.Vals = make([]uint32, n)
		for i := range r.Vals {
			r.Vals[i] = binary.LittleEndian.Uint32(p[recFixed+4*i:])
		}
	}
	return r, nil
}

// Decoder iterates the framed records of a byte buffer (a segment's
// contents or a shipped replication batch).
type Decoder struct {
	buf []byte
	off int
}

// NewDecoder returns a Decoder over buf.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Offset returns the byte offset of the next undecoded frame — after an
// ErrTorn, the point at which the log should be truncated.
func (d *Decoder) Offset() int { return d.off }

// Next returns the next record. io.EOF marks a clean end of the buffer; an
// error wrapping ErrTorn marks corruption at Offset().
func (d *Decoder) Next() (Record, error) {
	rest := d.buf[d.off:]
	if len(rest) == 0 {
		return Record{}, io.EOF
	}
	if len(rest) < frameHeader {
		return Record{}, fmt.Errorf("%w: %d-byte frame header remnant", ErrTorn, len(rest))
	}
	plen := int(binary.LittleEndian.Uint32(rest[0:4]))
	if plen < recFixed || plen > maxPayload {
		return Record{}, fmt.Errorf("%w: frame length %d out of range", ErrTorn, plen)
	}
	if len(rest) < frameHeader+plen {
		return Record{}, fmt.Errorf("%w: frame needs %d bytes, %d remain", ErrTorn, frameHeader+plen, len(rest))
	}
	payload := rest[frameHeader : frameHeader+plen]
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(rest[4:8]); got != want {
		return Record{}, fmt.Errorf("%w: crc %#x, frame claims %#x", ErrTorn, got, want)
	}
	r, err := DecodePayload(payload)
	if err != nil {
		return Record{}, err
	}
	d.off += frameHeader + plen
	return r, nil
}
