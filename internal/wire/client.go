package wire

import (
	"bufio"
	"fmt"
	"net"
	"time"
)

// Conn is a synchronous client connection: one in-flight request at a time,
// sequence numbers checked on every reply. It is the client half used by
// cmd/dbload and the server's end-to-end tests; it is not safe for
// concurrent use (open one Conn per worker goroutine).
type Conn struct {
	nc    net.Conn
	br    *bufio.Reader
	bw    *bufio.Writer
	seq   uint32
	buf   []byte
	token uint64

	// Timeout bounds each call (write + reply read). Zero disables
	// deadlines.
	Timeout time.Duration
	// MaxFrame bounds accepted response payloads.
	MaxFrame int
}

// Dial connects to a dbserve endpoint.
func Dial(addr string) (*Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewConn(nc), nil
}

// NewConn wraps an established connection.
func NewConn(nc net.Conn) *Conn {
	return &Conn{
		nc:       nc,
		br:       bufio.NewReader(nc),
		bw:       bufio.NewWriter(nc),
		Timeout:  10 * time.Second,
		MaxFrame: MaxFrame,
	}
}

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.nc.Close() }

// Call sends one request and waits for its reply. The sequence number is
// assigned here; a reply with a mismatched sequence is a protocol error.
func (c *Conn) Call(q Request) (Response, error) {
	c.seq++
	q.Seq = c.seq
	if c.Timeout > 0 {
		if err := c.nc.SetDeadline(time.Now().Add(c.Timeout)); err != nil {
			return Response{}, err
		}
	}
	c.buf = AppendRequest(c.buf[:0], q)
	if err := WriteFrame(c.bw, c.buf); err != nil {
		return Response{}, fmt.Errorf("wire: send %v: %w", q.Op, err)
	}
	if err := c.bw.Flush(); err != nil {
		return Response{}, fmt.Errorf("wire: flush %v: %w", q.Op, err)
	}
	payload, err := ReadFrame(c.br, c.MaxFrame)
	if err != nil {
		return Response{}, fmt.Errorf("wire: recv %v: %w", q.Op, err)
	}
	r, err := ParseResponse(payload)
	if err != nil {
		return Response{}, err
	}
	if r.Seq != q.Seq {
		return Response{}, fmt.Errorf("%w: reply seq %d for request %d", ErrBadFrame, r.Seq, q.Seq)
	}
	c.noteToken(r)
	return r, nil
}

// noteToken retains the highest write-acknowledgement token seen on this
// connection; a WAL-backed primary stamps one onto every OK reply of a
// logged mutation.
func (c *Conn) noteToken(r Response) {
	if t := r.Token(); t > c.token {
		c.token = t
	}
}

// LastToken returns the highest write-acknowledgement sequence token any
// reply on this connection has carried — the session's read-your-writes
// lease floor for a replica router. Zero means no acknowledged write yet
// (or a primary without a WAL, which stamps no tokens).
func (c *Conn) LastToken() uint64 { return c.token }

// call runs Call and folds the response code into the error.
func (c *Conn) call(q Request) (Response, error) {
	r, err := c.Call(q)
	if err != nil {
		return Response{}, err
	}
	return r, r.Err()
}

// Ping round-trips a no-op request.
func (c *Conn) Ping() error {
	_, err := c.call(Request{Op: OpPing})
	return err
}

// Init opens the database session (DBinit) and returns the server-side PID.
func (c *Conn) Init() (int, error) {
	r, err := c.call(Request{Op: OpInit})
	if err != nil {
		return 0, err
	}
	if len(r.Vals) != 1 {
		return 0, fmt.Errorf("%w: DBinit reply carries %d values", ErrBadFrame, len(r.Vals))
	}
	return int(r.Vals[0]), nil
}

// CloseSession closes the database session (DBclose) without closing the
// underlying connection.
func (c *Conn) CloseSession() error {
	_, err := c.call(Request{Op: OpClose})
	return err
}

// ReadRec reads all fields of a record (DBread_rec).
func (c *Conn) ReadRec(table, rec int) ([]uint32, error) {
	r, err := c.call(Request{Op: OpReadRec, Table: int32(table), Record: int32(rec)})
	if err != nil {
		return nil, err
	}
	return r.Vals, nil
}

// ReadFld reads one field (DBread_fld).
func (c *Conn) ReadFld(table, rec, field int) (uint32, error) {
	r, err := c.call(Request{Op: OpReadFld, Table: int32(table), Record: int32(rec), Field: int32(field)})
	if err != nil {
		return 0, err
	}
	if len(r.Vals) != 1 {
		return 0, fmt.Errorf("%w: DBread_fld reply carries %d values", ErrBadFrame, len(r.Vals))
	}
	return r.Vals[0], nil
}

// WriteRec writes all fields of a record (DBwrite_rec).
func (c *Conn) WriteRec(table, rec int, vals []uint32) error {
	_, err := c.call(Request{Op: OpWriteRec, Table: int32(table), Record: int32(rec), Vals: vals})
	return err
}

// WriteFld writes one field (DBwrite_fld).
func (c *Conn) WriteFld(table, rec, field int, v uint32) error {
	_, err := c.call(Request{
		Op: OpWriteFld, Table: int32(table), Record: int32(rec), Field: int32(field),
		Vals: []uint32{v},
	})
	return err
}

// Move reassigns a record to another logical group (DBmove).
func (c *Conn) Move(table, rec, group int) error {
	_, err := c.call(Request{Op: OpMove, Table: int32(table), Record: int32(rec), Aux: int32(group)})
	return err
}

// Alloc claims a free record of table into group and returns its index.
func (c *Conn) Alloc(table, group int) (int, error) {
	r, err := c.call(Request{Op: OpAlloc, Table: int32(table), Aux: int32(group)})
	if err != nil {
		return 0, err
	}
	if len(r.Vals) != 1 {
		return 0, fmt.Errorf("%w: DBalloc reply carries %d values", ErrBadFrame, len(r.Vals))
	}
	return int(r.Vals[0]), nil
}

// Free releases a record back to the table's free pool.
func (c *Conn) Free(table, rec int) error {
	_, err := c.call(Request{Op: OpFree, Table: int32(table), Record: int32(rec)})
	return err
}

// Begin opens a transaction lock on table.
func (c *Conn) Begin(table int) error {
	_, err := c.call(Request{Op: OpBegin, Table: int32(table)})
	return err
}

// Commit releases every transaction lock held by the session.
func (c *Conn) Commit() error {
	_, err := c.call(Request{Op: OpCommit})
	return err
}

// Status reports a record's header status byte.
func (c *Conn) Status(table, rec int) (int, error) {
	r, err := c.call(Request{Op: OpStatus, Table: int32(table), Record: int32(rec)})
	if err != nil {
		return 0, err
	}
	if len(r.Vals) != 1 {
		return 0, fmt.Errorf("%w: DBstatus reply carries %d values", ErrBadFrame, len(r.Vals))
	}
	return int(r.Vals[0]), nil
}

// Sweep forces one full audit sweep on the server and returns the number of
// findings it produced.
func (c *Conn) Sweep() (int, error) {
	r, err := c.call(Request{Op: OpSweep})
	if err != nil {
		return 0, err
	}
	if len(r.Vals) != 1 {
		return 0, fmt.Errorf("%w: Sweep reply carries %d values", ErrBadFrame, len(r.Vals))
	}
	return int(r.Vals[0]), nil
}

// Stats2 fetches the server's full metrics snapshot as a JSON document:
// per-opcode latency percentiles, audit check runtimes and findings, queue
// drop stats, and the memdb activity gauges. Decode it with
// metrics.ParseSnapshot.
func (c *Conn) Stats2() ([]byte, error) {
	r, err := c.call(Request{Op: OpStats2})
	if err != nil {
		return nil, err
	}
	if len(r.Detail) == 0 {
		return nil, fmt.Errorf("%w: Stats2 reply carries no document", ErrBadFrame)
	}
	return []byte(r.Detail), nil
}

// Health fetches the server's health & SLO document as JSON: the overall
// and per-subsystem OK/DEGRADED/CRITICAL states, objective values with
// error-budget burn rates, the online detection-latency tracker, and
// audit-debt accounting. Decode it with health.ParseStatus.
func (c *Conn) Health() ([]byte, error) {
	r, err := c.call(Request{Op: OpHealth})
	if err != nil {
		return nil, err
	}
	if len(r.Detail) == 0 {
		return nil, fmt.Errorf("%w: Health reply carries no document", ErrBadFrame)
	}
	return []byte(r.Detail), nil
}

// TraceJSON fetches the server's flight-recorder journal as a JSON array
// of trace events. kind filters to one event kind (0 = all kinds); n caps
// the result to the most recent n events (0 = server default). Decode it
// with trace.DecodeJSON. An empty journal decodes to zero events — it is
// not an error.
func (c *Conn) TraceJSON(kind, n int) ([]byte, error) {
	r, err := c.call(Request{Op: OpTrace, Table: int32(kind), Aux: int32(n)})
	if err != nil {
		return nil, err
	}
	return []byte(r.Detail), nil
}

// ReplState is the decoded OpReplStatus reply.
type ReplState struct {
	Role       int    // RolePrimary or RoleStandby
	LastSeq    uint64 // last WAL sequence appended on the queried node
	Applied    uint64 // standby: last applied; primary: standby's last acked
	ServeReads bool   // node answers routed reads (router extension)
	Lag        uint64 // node's own replication-lag estimate in records (router extension)
}

// ReplStatus queries a node's replication role and log positions. The
// serve-reads flag and lag estimate decode to their zero values against a
// node that predates the router extension.
func (c *Conn) ReplStatus() (ReplState, error) {
	r, err := c.call(Request{Op: OpReplStatus})
	if err != nil {
		return ReplState{}, err
	}
	if len(r.Vals) <= ReplAppliedHi {
		return ReplState{}, fmt.Errorf("%w: ReplStatus reply carries %d values", ErrBadFrame, len(r.Vals))
	}
	st := ReplState{
		Role:    int(r.Vals[ReplRole]),
		LastSeq: JoinU64(r.Vals[ReplLastLo], r.Vals[ReplLastHi]),
		Applied: JoinU64(r.Vals[ReplAppliedLo], r.Vals[ReplAppliedHi]),
	}
	if len(r.Vals) >= NumReplStatusVals {
		st.ServeReads = r.Vals[ReplServeReads] != 0
		st.Lag = JoinU64(r.Vals[ReplLagLo], r.Vals[ReplLagHi])
	}
	return st, nil
}

// Replicate polls the primary for WAL records after afterSeq. addr is the
// poller's own serving address, which the primary remembers as its mirror
// for audit repairs. The returned blob is a batch of CRC-framed WAL records
// (possibly empty when caught up); lastSeq is the primary's log position.
// A wire.ErrReplGap error means afterSeq fell off the primary's tail ring
// and the standby must re-bootstrap with ReplSnap.
func (c *Conn) Replicate(afterSeq uint64, addr string) (blob []byte, lastSeq uint64, err error) {
	return c.ReplicateShard(0, afterSeq, addr)
}

// ReplicateShard is Replicate against one WAL stream of a sharded primary:
// shard rides the request's otherwise-unused Table field (zero on the wire
// is shard 0, so unsharded peers interoperate unchanged).
func (c *Conn) ReplicateShard(shard int, afterSeq uint64, addr string) (blob []byte, lastSeq uint64, err error) {
	lo, hi := SplitU64(afterSeq)
	r, err := c.call(Request{Op: OpReplicate, Table: int32(shard), Detail: addr, Vals: []uint32{lo, hi}})
	if err != nil {
		return nil, 0, err
	}
	if len(r.Vals) < 2 {
		return nil, 0, fmt.Errorf("%w: Replicate reply carries %d values", ErrBadFrame, len(r.Vals))
	}
	return []byte(r.Detail), JoinU64(r.Vals[0], r.Vals[1]), nil
}

// ReplSnap fetches one chunk of the primary's bootstrap snapshot starting
// at byte offset off. total is the full snapshot length and seq the WAL
// position the snapshot captured; both are constant across the chunks of
// one bootstrap.
func (c *Conn) ReplSnap(off int) (chunk []byte, total int, seq uint64, err error) {
	return c.ReplSnapShard(0, off)
}

// ReplSnapShard is ReplSnap against one shard of a sharded primary; shard
// rides the request's otherwise-unused Table field.
func (c *Conn) ReplSnapShard(shard, off int) (chunk []byte, total int, seq uint64, err error) {
	r, err := c.call(Request{Op: OpReplSnap, Table: int32(shard), Record: int32(off)})
	if err != nil {
		return nil, 0, 0, err
	}
	if len(r.Vals) < 3 {
		return nil, 0, 0, fmt.Errorf("%w: ReplSnap reply carries %d values", ErrBadFrame, len(r.Vals))
	}
	return []byte(r.Detail), int(r.Vals[0]), JoinU64(r.Vals[1], r.Vals[2]), nil
}

// Promote orders a standby to take over as primary immediately.
func (c *Conn) Promote() error {
	_, err := c.call(Request{Op: OpReplPromote})
	return err
}

// ReplFetch reads a record directly from a replica for mirror-sourced audit
// repair: the record's status byte plus every field value.
func (c *Conn) ReplFetch(table, rec int) (status int, vals []uint32, err error) {
	return c.ReplFetchShard(0, table, rec)
}

// ReplFetchShard is ReplFetch addressed to one shard of a sharded standby
// (the record index is the shard's local index); shard rides the request's
// otherwise-unused Field field.
func (c *Conn) ReplFetchShard(shard, table, rec int) (status int, vals []uint32, err error) {
	r, err := c.call(Request{Op: OpReplFetch, Table: int32(table), Record: int32(rec), Field: int32(shard)})
	if err != nil {
		return 0, nil, err
	}
	if len(r.Vals) < 1 {
		return 0, nil, fmt.Errorf("%w: ReplFetch reply carries %d values", ErrBadFrame, len(r.Vals))
	}
	return int(r.Vals[0]), r.Vals[1:], nil
}

// Stats fetches the server counter snapshot (indexed by the StatsVals
// constants).
func (c *Conn) Stats() ([]uint32, error) {
	r, err := c.call(Request{Op: OpStats})
	if err != nil {
		return nil, err
	}
	if len(r.Vals) < NumStatVals {
		return nil, fmt.Errorf("%w: Stats reply carries %d values", ErrBadFrame, len(r.Vals))
	}
	return r.Vals, nil
}

// ProcExec runs the named server-side procedure with args and returns the
// values it emitted. A PECOS abort surfaces as ErrProcViolation; crashes,
// hangs, and commit rejections as ErrProcFault.
func (c *Conn) ProcExec(name string, args []uint32) ([]uint32, error) {
	r, err := c.call(Request{Op: OpProcExec, Detail: name, Vals: args})
	if err != nil {
		return nil, err
	}
	return r.Vals, nil
}

// ProcLoad registers source under name (assembled and PECOS-instrumented
// server-side) and returns the instrumented size, assertion-block count, and
// registry version.
func (c *Conn) ProcLoad(name, source string) (words, blocks, version int, err error) {
	r, err := c.call(Request{Op: OpProcLoad, Detail: name + "\n" + source})
	if err != nil {
		return 0, 0, 0, err
	}
	if len(r.Vals) != 3 {
		return 0, 0, 0, fmt.Errorf("%w: ProcLoad reply carries %d values", ErrBadFrame, len(r.Vals))
	}
	return int(r.Vals[0]), int(r.Vals[1]), int(r.Vals[2]), nil
}

// ProcList fetches the procedure registry inventory as a JSON document
// (decode with proc.DecodeInfos).
func (c *Conn) ProcList() ([]byte, error) {
	r, err := c.call(Request{Op: OpProcList})
	if err != nil {
		return nil, err
	}
	return []byte(r.Detail), nil
}

// InjectCtl retimes the server-side fault injectors at runtime: data is the
// region bit-flip period, proc the procedure text-flip period (zero stops
// the respective injector), and mode one of the InjectMode constants.
// Scenario timelines use it to ramp a fault storm mid-run and disarm it
// again for the quiesce phase.
func (c *Conn) InjectCtl(data, proc time.Duration, mode int) error {
	dlo, dhi := SplitU64(uint64(data))
	plo, phi := SplitU64(uint64(proc))
	_, err := c.call(Request{
		Op: OpInjectCtl, Aux: int32(mode),
		Vals: []uint32{dlo, dhi, plo, phi},
	})
	return err
}
