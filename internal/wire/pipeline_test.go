package wire

import (
	"bufio"
	"errors"
	"net"
	"testing"
)

// echoServer answers every request in arrival order with a response
// carrying the request's sequence and its Record value echoed back.
func echoServer(t *testing.T, nc net.Conn) {
	t.Helper()
	go func() {
		br := bufio.NewReader(nc)
		bw := bufio.NewWriter(nc)
		var buf []byte
		for {
			payload, err := ReadFrame(br, MaxFrame)
			if err != nil {
				return
			}
			q, err := ParseRequest(payload)
			if err != nil {
				return
			}
			buf = AppendResponse(buf[:0], Response{Seq: q.Seq, Vals: []uint32{uint32(q.Record)}})
			if err := WriteFrame(bw, buf); err != nil {
				return
			}
			if err := bw.Flush(); err != nil {
				return
			}
		}
	}()
}

func TestPipelineWindowAndOrder(t *testing.T) {
	cn, sn := net.Pipe()
	defer cn.Close()
	defer sn.Close()
	echoServer(t, sn)

	c := NewConn(cn)
	c.Timeout = 0 // net.Pipe does not support deadlines reliably across goroutines
	p := c.Pipeline(4)

	// Fill the window.
	for i := 0; i < 4; i++ {
		if _, err := p.Send(Request{Op: OpReadFld, Record: int32(i)}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if p.InFlight() != 4 {
		t.Fatalf("in flight = %d, want 4", p.InFlight())
	}
	if _, err := p.Send(Request{Op: OpReadFld}); !errors.Is(err, ErrWindowFull) {
		t.Fatalf("send past window = %v, want ErrWindowFull", err)
	}

	// net.Pipe is unbuffered: the echo server can only drain our frames
	// once a reader exists, so Recv (which flushes first) drives both
	// directions. Replies must come back in send order.
	for i := 0; i < 4; i++ {
		r, err := p.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if len(r.Vals) != 1 || r.Vals[0] != uint32(i) {
			t.Fatalf("recv %d echoed %v, want [%d]", i, r.Vals, i)
		}
	}
	if p.InFlight() != 0 {
		t.Fatalf("in flight after drain = %d, want 0", p.InFlight())
	}
	if _, err := p.Recv(); err == nil {
		t.Fatal("Recv with nothing in flight should error")
	}

	// The window is reusable after draining.
	if _, err := p.Send(Request{Op: OpReadFld, Record: 9}); err != nil {
		t.Fatal(err)
	}
	r, err := p.Recv()
	if err != nil || r.Vals[0] != 9 {
		t.Fatalf("reuse recv = %v, %v", r.Vals, err)
	}
}

func TestPipelineSharesConnSequence(t *testing.T) {
	cn, sn := net.Pipe()
	defer cn.Close()
	defer sn.Close()
	echoServer(t, sn)

	c := NewConn(cn)
	c.Timeout = 0
	p := c.Pipeline(2)
	seq1, err := p.Send(Request{Op: OpPing})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Recv(); err != nil {
		t.Fatal(err)
	}
	// The synchronous shim keeps working on the same connection once the
	// pipeline is drained, continuing the shared sequence.
	r, err := c.Call(Request{Op: OpPing})
	if err != nil {
		t.Fatal(err)
	}
	if r.Seq != seq1+1 {
		t.Fatalf("Call after pipeline got seq %d, want %d", r.Seq, seq1+1)
	}
}
