package wire

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzCodec throws arbitrary bytes at every decoder entry point a peer
// controls: the frame reader and both payload parsers. The invariants are
// the protocol's safety contract — a malformed length prefix, truncated
// payload, or lying count field must produce an error, never a panic or an
// over-allocation; and any payload a parser accepts must re-encode to the
// identical bytes (the codec is canonical).
func FuzzCodec(f *testing.F) {
	// In-code seeds mirror testdata/fuzz/FuzzCodec: valid request and
	// response encodings plus the malformed shapes the parsers reject.
	f.Add(AppendRequest(nil, Request{Seq: 7, Op: OpReadFld, Table: 3, Record: 9, Field: 2}))
	f.Add(AppendRequest(nil, Request{Seq: 1, Op: OpWriteRec, Table: 1, Vals: []uint32{1, 2, 3}}))
	f.Add(AppendResponse(nil, Response{Seq: 7, Vals: []uint32{42}}))
	f.Add(AppendResponse(nil, Response{Seq: 9, Code: CodeBounds, Index: 5, Limit: 4, Detail: "record"}))
	f.Add(AppendRequest(nil, Request{Seq: 11, Op: OpProcExec, Detail: "res_touch", Vals: []uint32{3, 77}}))
	f.Add(AppendRequest(nil, Request{Seq: 12, Op: OpProcLoad, Detail: "p\nmovi r1, 1\nhalt\n"}))
	f.Add(AppendResponse(nil, Response{Seq: 11, Code: CodeProcViolation, Detail: "res_touch: control-flow violation"}))
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Add(bytes.Repeat([]byte{0xFF}, reqFixed))

	f.Fuzz(func(t *testing.T, data []byte) {
		if q, err := ParseRequest(data); err == nil {
			out := AppendRequest(nil, q)
			if !bytes.Equal(out, data) {
				t.Errorf("request re-encode differs:\n in %x\nout %x", data, out)
			}
			q2, err := ParseRequest(out)
			if err != nil {
				t.Fatalf("re-parse of accepted request failed: %v", err)
			}
			if !reflect.DeepEqual(q, q2) {
				t.Errorf("request round-trip drift: %+v vs %+v", q, q2)
			}
		}

		if r, err := ParseResponse(data); err == nil {
			out := AppendResponse(nil, r)
			// The encoder truncates Detail at MaxDetail; a parsed detail can
			// be longer (u16 length field), so byte equality only holds below
			// the cap.
			if len(r.Detail) <= MaxDetail && !bytes.Equal(out, data) {
				t.Errorf("response re-encode differs:\n in %x\nout %x", data, out)
			}
			if _, err := ParseResponse(out); err != nil {
				t.Fatalf("re-parse of re-encoded response failed: %v", err)
			}
		}

		// Frame layer: whatever the bytes claim, ReadFrame must either
		// deliver exactly the declared payload or fail cleanly.
		payload, err := ReadFrame(bytes.NewReader(data), MaxFrame)
		if err == nil {
			if len(payload) == 0 || len(payload) > MaxFrame {
				t.Fatalf("ReadFrame accepted a %d-byte payload", len(payload))
			}
			if !bytes.Equal(payload, data[4:4+len(payload)]) {
				t.Error("ReadFrame delivered bytes that differ from the wire")
			}
		}
	})
}
