// Package wire defines the network protocol of the database serving
// subsystem: a compact length-prefixed binary codec exposing the paper's
// seven-call DB API (Table 1: DBinit, DBclose, DBread_rec, DBread_fld,
// DBwrite_rec, DBwrite_fld, DBmove) plus the allocation, transaction, and
// control calls the reproduction's `internal/memdb` grew around them.
//
// Framing: every message is `u32 payload-length | payload`, little endian,
// so a reader never has to scan for delimiters and a bad peer cannot make
// the server buffer unboundedly (lengths above the configured maximum are
// rejected before any allocation).
//
// Request payload layout (25 + len(detail) + 4n bytes):
//
//	u32 seq | u8 op | i32 table | i32 record | i32 field | i32 aux | u16 detail-len | detail | u16 n | n × u32
//
// Response payload layout (15 + len(detail) + 4n bytes):
//
//	u32 seq | u8 code | i32 index | i32 limit | u16 detail-len | detail | u16 n | n × u32
//
// Every `internal/memdb` error has a stable wire code; BoundsError carries
// its What/Index/Limit triple across the wire so clients recover the exact
// server-side error value.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/memdb"
)

// Op identifies one request operation.
type Op uint8

// Protocol operations. The first block mirrors the paper's Table 1 API;
// the second exposes the allocation/transaction calls of internal/memdb;
// the third is serving-plane control.
const (
	OpPing     Op = iota + 1
	OpInit        // DBinit: open a session, returns [pid]
	OpClose       // DBclose: close the session
	OpReadRec     // DBread_rec: returns all fields
	OpReadFld     // DBread_fld: returns [value]
	OpWriteRec    // DBwrite_rec: Vals carries all fields
	OpWriteFld    // DBwrite_fld: Vals[0] is the value
	OpMove        // DBmove: Aux is the destination group
	OpAlloc       // allocate a record, Aux is the group, returns [record]
	OpFree        // free a record
	OpBegin       // open a transaction lock on Table
	OpCommit      // release every transaction lock
	OpStatus      // returns [record status byte]
	OpSweep       // force one full audit sweep, returns [finding count]
	OpStats       // server counters snapshot, see StatsVals
	OpStats2      // full metrics snapshot; Detail carries the JSON document
	OpTrace       // flight-recorder journal; Table filters by kind, Aux caps the event count, Detail carries the JSON events

	// Replication plane (durability & failover subsystem). A standby polls
	// its primary with OpReplicate; the record stream rides in Detail as
	// CRC-framed WAL records, so integrity is end-to-end, not per-hop.
	OpReplStatus  // role + log positions, see ReplStatus
	OpReplicate   // Vals [after-lo, after-hi], request Detail = standby addr; response Detail = record batch, Vals [last-lo, last-hi]
	OpReplSnap    // bootstrap snapshot chunk; Record is the byte offset, response Vals [total, seq-lo, seq-hi], Detail = chunk
	OpReplPromote // force a standby to take over as primary
	OpReplFetch   // mirror read for audit repair: returns [status, fields...] of (Table, Record)
	OpProcExec    // run a registered procedure: Detail = name, Vals = args; returns the emitted values
	OpProcLoad    // register a procedure: Detail = name + "\n" + source; returns [words, blocks, version]
	OpProcList    // procedure registry introspection; response Detail carries the JSON inventory
	OpInjectCtl   // retime the server-side fault injectors at runtime: Vals [data-lo, data-hi, proc-lo, proc-hi] periods in ns (0 = off), Aux = InjectMode*
	OpHealth      // health & SLO plane snapshot; Detail carries the JSON health.Status document
	opMax
)

// Injection targeting modes carried in OpInjectCtl's Aux field.
const (
	// InjectModeRandom flips bits anywhere in the region (the legacy
	// Config.InjectPeriod behavior): some shots land on bytes no check
	// characterizes and go undetected, as in the paper's campaigns.
	InjectModeRandom = 0
	// InjectModeStatic walks the static table extents (catalog excluded)
	// with a coprime stride, so every shot is a distinct byte the static
	// checksum audit is guaranteed to detect and repair — the mode
	// fault-storm scenarios use when every shot must join a finding.
	InjectModeStatic = 1
)

// NumOps is the number of defined operations (for per-op stat arrays).
const NumOps = int(opMax)

// String returns the protocol-level operation name.
func (o Op) String() string {
	switch o {
	case OpPing:
		return "Ping"
	case OpInit:
		return "DBinit"
	case OpClose:
		return "DBclose"
	case OpReadRec:
		return "DBread_rec"
	case OpReadFld:
		return "DBread_fld"
	case OpWriteRec:
		return "DBwrite_rec"
	case OpWriteFld:
		return "DBwrite_fld"
	case OpMove:
		return "DBmove"
	case OpAlloc:
		return "DBalloc"
	case OpFree:
		return "DBfree"
	case OpBegin:
		return "DBbegin"
	case OpCommit:
		return "DBcommit"
	case OpStatus:
		return "DBstatus"
	case OpSweep:
		return "Sweep"
	case OpStats:
		return "Stats"
	case OpStats2:
		return "Stats2"
	case OpTrace:
		return "Trace"
	case OpReplStatus:
		return "ReplStatus"
	case OpReplicate:
		return "Replicate"
	case OpReplSnap:
		return "ReplSnap"
	case OpReplPromote:
		return "ReplPromote"
	case OpReplFetch:
		return "ReplFetch"
	case OpProcExec:
		return "ProcExec"
	case OpProcLoad:
		return "ProcLoad"
	case OpProcList:
		return "ProcList"
	case OpInjectCtl:
		return "InjectCtl"
	case OpHealth:
		return "Health"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Valid reports whether o is a defined operation.
func (o Op) Valid() bool { return o >= OpPing && o < opMax }

// Code is a response status code. Zero is success; every memdb error and
// serving-plane failure has a distinct code.
type Code uint8

// Response codes.
const (
	CodeOK Code = iota
	CodeBadFrame
	CodeUnknownOp
	CodeNoSession
	CodeSessionExists
	CodeCorruptCatalog // memdb.ErrCorruptCatalog
	CodeLocked         // memdb.ErrLocked
	CodeNoFreeRecord   // memdb.ErrNoFreeRecord
	CodeClosed         // memdb.ErrClosed
	CodeNotActive      // memdb.ErrNotActive
	CodeBounds         // *memdb.BoundsError, detail carries What
	CodeOverload       // request queue full (backpressure drop)
	CodeShutdown       // server draining, no new work accepted
	CodeTimeout        // executor reply deadline exceeded
	CodeInternal       // unclassified server-side error
	CodeStandby        // server is a hot standby; clients must use the primary
	CodeNotPrimary     // replication op requires a WAL-backed primary
	CodeNotStandby     // promotion requires a standby
	CodeReplGap        // requested log position evicted; re-bootstrap from snapshot
	CodeUnknownProc    // PROC op named an unregistered procedure
	CodeProcViolation  // procedure aborted by a PECOS control-flow check
	CodeProcFault      // procedure crashed, hung, or failed to commit
	CodeStale          // read-serving standby is behind the request's lease floor
)

// Serving-plane sentinel errors decoded from response codes.
var (
	ErrBadFrame      = errors.New("wire: malformed frame")
	ErrUnknownOp     = errors.New("wire: unknown operation")
	ErrNoSession     = errors.New("wire: no session (DBinit first)")
	ErrSessionExists = errors.New("wire: session already open")
	ErrOverload      = errors.New("wire: server overloaded, request dropped")
	ErrShutdown      = errors.New("wire: server shutting down")
	ErrTimeout       = errors.New("wire: request timed out")
	ErrStandby       = errors.New("wire: server is a standby, reconnect to the primary")
	ErrNotPrimary    = errors.New("wire: not a WAL-backed primary")
	ErrNotStandby    = errors.New("wire: not a standby")
	ErrReplGap       = errors.New("wire: replication gap, snapshot bootstrap required")
	ErrUnknownProc   = errors.New("wire: unknown procedure")
	ErrProcViolation = errors.New("wire: procedure aborted by PECOS control-flow check")
	ErrProcFault     = errors.New("wire: procedure faulted")
	ErrStale         = errors.New("wire: replica behind the requested sequence token")
)

// Request is one client→server call.
type Request struct {
	Seq    uint32 // echoed verbatim in the response
	Op     Op
	Table  int32
	Record int32
	Field  int32
	Aux    int32  // group for DBmove/DBalloc; operation-specific otherwise
	Detail string // side data: standby address (replication), procedure name/source (PROC ops)
	Vals   []uint32
}

// Response is one server→client reply.
type Response struct {
	Seq    uint32
	Code   Code
	Index  int32  // BoundsError index, else 0
	Limit  int32  // BoundsError limit, else 0
	Detail string // BoundsError What, or diagnostic text
	Vals   []uint32
}

// Frame and payload size limits.
const (
	// MaxFrame is the default maximum payload length accepted by either
	// side. Large enough for any record of a realistic schema, small
	// enough that a hostile length prefix cannot balloon memory.
	MaxFrame = 1 << 16
	// maxVals bounds the value vector; with u16 count this is the codec
	// ceiling regardless of frame budget.
	maxVals = 1 << 14
	// MaxDetail bounds the detail string on both sides. Error diagnostics
	// are short, but the STATS2 metrics snapshot, the TRACE journal, and
	// replication record batches all ride in Detail, so the cap must clear
	// a full registry dump while still fitting MaxFrame alongside the
	// fixed fields.
	MaxDetail = 1 << 15

	reqFixed  = 4 + 1 + 4*4 + 2 + 2
	respFixed = 4 + 1 + 4 + 4 + 2 + 2
)

// WriteFrame writes one length-prefixed payload.
func WriteFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed payload, rejecting lengths of zero or
// above max before allocating.
func ReadFrame(r io.Reader, max int) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := int(binary.LittleEndian.Uint32(hdr[:]))
	if n <= 0 || n > max {
		return nil, fmt.Errorf("%w: payload length %d (max %d)", ErrBadFrame, n, max)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// AppendRequest appends the encoded request to dst.
func AppendRequest(dst []byte, q Request) []byte {
	detail := q.Detail
	if len(detail) > MaxDetail {
		detail = detail[:MaxDetail]
	}
	dst = binary.LittleEndian.AppendUint32(dst, q.Seq)
	dst = append(dst, byte(q.Op))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(q.Table))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(q.Record))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(q.Field))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(q.Aux))
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(detail)))
	dst = append(dst, detail...)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(q.Vals)))
	for _, v := range q.Vals {
		dst = binary.LittleEndian.AppendUint32(dst, v)
	}
	return dst
}

// ParseRequest decodes one request payload.
func ParseRequest(p []byte) (Request, error) {
	if len(p) < reqFixed {
		return Request{}, fmt.Errorf("%w: request payload %d bytes", ErrBadFrame, len(p))
	}
	q := Request{
		Seq:    binary.LittleEndian.Uint32(p[0:4]),
		Op:     Op(p[4]),
		Table:  int32(binary.LittleEndian.Uint32(p[5:9])),
		Record: int32(binary.LittleEndian.Uint32(p[9:13])),
		Field:  int32(binary.LittleEndian.Uint32(p[13:17])),
		Aux:    int32(binary.LittleEndian.Uint32(p[17:21])),
	}
	dn := int(binary.LittleEndian.Uint16(p[21:23]))
	if dn > MaxDetail || len(p) < 23+dn+2 {
		return Request{}, fmt.Errorf("%w: request detail overruns payload", ErrBadFrame)
	}
	q.Detail = string(p[23 : 23+dn])
	off := 23 + dn
	n := int(binary.LittleEndian.Uint16(p[off : off+2]))
	off += 2
	if n > maxVals || len(p) != off+4*n {
		return Request{}, fmt.Errorf("%w: request claims %d values in %d bytes", ErrBadFrame, n, len(p))
	}
	if n > 0 {
		q.Vals = make([]uint32, n)
		for i := range q.Vals {
			q.Vals[i] = binary.LittleEndian.Uint32(p[off+4*i:])
		}
	}
	return q, nil
}

// AppendResponse appends the encoded response to dst.
func AppendResponse(dst []byte, r Response) []byte {
	detail := r.Detail
	if len(detail) > MaxDetail {
		detail = detail[:MaxDetail]
	}
	dst = binary.LittleEndian.AppendUint32(dst, r.Seq)
	dst = append(dst, byte(r.Code))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(r.Index))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(r.Limit))
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(detail)))
	dst = append(dst, detail...)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(r.Vals)))
	for _, v := range r.Vals {
		dst = binary.LittleEndian.AppendUint32(dst, v)
	}
	return dst
}

// ParseResponse decodes one response payload.
func ParseResponse(p []byte) (Response, error) {
	if len(p) < respFixed {
		return Response{}, fmt.Errorf("%w: response payload %d bytes", ErrBadFrame, len(p))
	}
	r := Response{
		Seq:   binary.LittleEndian.Uint32(p[0:4]),
		Code:  Code(p[4]),
		Index: int32(binary.LittleEndian.Uint32(p[5:9])),
		Limit: int32(binary.LittleEndian.Uint32(p[9:13])),
	}
	dn := int(binary.LittleEndian.Uint16(p[13:15]))
	if len(p) < 15+dn+2 {
		return Response{}, fmt.Errorf("%w: response detail overruns payload", ErrBadFrame)
	}
	r.Detail = string(p[15 : 15+dn])
	off := 15 + dn
	n := int(binary.LittleEndian.Uint16(p[off : off+2]))
	off += 2
	if n > maxVals || len(p) != off+4*n {
		return Response{}, fmt.Errorf("%w: response claims %d values in %d bytes", ErrBadFrame, n, len(p))
	}
	if n > 0 {
		r.Vals = make([]uint32, n)
		for i := range r.Vals {
			r.Vals[i] = binary.LittleEndian.Uint32(p[off+4*i:])
		}
	}
	return r, nil
}

// ErrorResponse maps a server-side error to a response for seq. Every memdb
// sentinel and BoundsError gets its dedicated code; anything else is
// CodeInternal with the error text as detail.
func ErrorResponse(seq uint32, err error) Response {
	r := Response{Seq: seq}
	var be *memdb.BoundsError
	switch {
	case err == nil:
		// Defensive: an OK response should be built directly.
	case errors.As(err, &be):
		r.Code = CodeBounds
		r.Index = int32(be.Index)
		r.Limit = int32(be.Limit)
		r.Detail = be.What
	case errors.Is(err, memdb.ErrCorruptCatalog):
		r.Code = CodeCorruptCatalog
	case errors.Is(err, memdb.ErrLocked):
		r.Code = CodeLocked
		r.Detail = err.Error()
	case errors.Is(err, memdb.ErrNoFreeRecord):
		r.Code = CodeNoFreeRecord
	case errors.Is(err, memdb.ErrClosed):
		r.Code = CodeClosed
	case errors.Is(err, memdb.ErrNotActive):
		r.Code = CodeNotActive
	case errors.Is(err, ErrUnknownOp):
		r.Code = CodeUnknownOp
	case errors.Is(err, ErrNoSession):
		r.Code = CodeNoSession
	case errors.Is(err, ErrSessionExists):
		r.Code = CodeSessionExists
	case errors.Is(err, ErrOverload):
		r.Code = CodeOverload
	case errors.Is(err, ErrShutdown):
		r.Code = CodeShutdown
	case errors.Is(err, ErrTimeout):
		r.Code = CodeTimeout
	case errors.Is(err, ErrStandby):
		r.Code = CodeStandby
	case errors.Is(err, ErrNotPrimary):
		r.Code = CodeNotPrimary
	case errors.Is(err, ErrNotStandby):
		r.Code = CodeNotStandby
	case errors.Is(err, ErrReplGap):
		r.Code = CodeReplGap
	case errors.Is(err, ErrUnknownProc):
		r.Code = CodeUnknownProc
		r.Detail = err.Error()
	case errors.Is(err, ErrProcViolation):
		r.Code = CodeProcViolation
		r.Detail = err.Error()
	case errors.Is(err, ErrProcFault):
		r.Code = CodeProcFault
		r.Detail = err.Error()
	case errors.Is(err, ErrStale):
		r.Code = CodeStale
	case errors.Is(err, ErrBadFrame):
		r.Code = CodeBadFrame
		r.Detail = err.Error()
	default:
		r.Code = CodeInternal
		r.Detail = err.Error()
	}
	return r
}

// Err converts the response code back into the matching Go error, so client
// code can errors.Is/As against memdb sentinels exactly as if it had called
// the API in-process. Returns nil for CodeOK.
func (r Response) Err() error {
	switch r.Code {
	case CodeOK:
		return nil
	case CodeBadFrame:
		return fmt.Errorf("%w: %s", ErrBadFrame, r.Detail)
	case CodeUnknownOp:
		return ErrUnknownOp
	case CodeNoSession:
		return ErrNoSession
	case CodeSessionExists:
		return ErrSessionExists
	case CodeCorruptCatalog:
		return memdb.ErrCorruptCatalog
	case CodeLocked:
		return fmt.Errorf("%s: %w", r.Detail, memdb.ErrLocked)
	case CodeNoFreeRecord:
		return memdb.ErrNoFreeRecord
	case CodeClosed:
		return memdb.ErrClosed
	case CodeNotActive:
		return memdb.ErrNotActive
	case CodeBounds:
		return &memdb.BoundsError{What: r.Detail, Index: int(r.Index), Limit: int(r.Limit)}
	case CodeOverload:
		return ErrOverload
	case CodeShutdown:
		return ErrShutdown
	case CodeTimeout:
		return ErrTimeout
	case CodeStandby:
		return ErrStandby
	case CodeNotPrimary:
		return ErrNotPrimary
	case CodeNotStandby:
		return ErrNotStandby
	case CodeReplGap:
		return ErrReplGap
	case CodeUnknownProc:
		return fmt.Errorf("%s: %w", r.Detail, ErrUnknownProc)
	case CodeProcViolation:
		return fmt.Errorf("%s: %w", r.Detail, ErrProcViolation)
	case CodeProcFault:
		return fmt.Errorf("%s: %w", r.Detail, ErrProcFault)
	case CodeStale:
		return ErrStale
	default:
		return fmt.Errorf("wire: server error (code %d): %s", r.Code, r.Detail)
	}
}

// StatsVals indexes the value vector returned by OpStats.
const (
	StatReqDropped     = iota // requests rejected with CodeOverload
	StatReqDropBurst          // longest consecutive-drop run
	StatReqHighWater          // deepest request-queue depth observed
	StatAuditDropped          // audit notification messages dropped
	StatAuditHighWater        // deepest audit-queue depth observed
	StatAuditFindings         // findings produced by live audits
	StatAuditSweeps           // full audit sweeps completed
	StatActiveConns           // currently connected clients
	StatTotalConns            // connections accepted since start
	NumStatVals
)

// Replication roles reported by OpReplStatus.
const (
	RolePrimary = 0
	RoleStandby = 1
)

// ReplStatusVals indexes the value vector returned by OpReplStatus. The
// first five entries are the original replication vector; the router
// extension appends the serve-reads flag and the node's own lag estimate
// (standby: primary's last shipped seq minus applied; primary: last
// appended seq minus the slowest live standby's ack) so a client-side
// router can health-rank a replica set from one round trip per node.
const (
	ReplRole       = iota // RolePrimary or RoleStandby
	ReplLastLo            // last WAL sequence appended (lo 32 bits)
	ReplLastHi            //   "  (hi 32 bits)
	ReplAppliedLo         // standby: last applied seq; primary: standby's last acked seq
	ReplAppliedHi         //   "  (hi 32 bits)
	ReplServeReads        // 1 when the node answers routed reads (primary always; standby only in serve-reads mode)
	ReplLagLo             // node's replication lag estimate in records (lo 32 bits)
	ReplLagHi             //   "  (hi 32 bits)
	NumReplStatusVals
)

// Write-acknowledgement tokens (bounded-staleness leases). A WAL-backed
// primary stamps every OK response to a logged mutation with the record's
// log sequence in the Index/Limit pair — those fields only carry
// BoundsError operands on failure, so they are free on success and old
// clients ignore them. A router session keeps the highest token it has
// seen and forwards it as the lease floor in the Vals of routed reads
// ([lo, hi]); a read-serving standby refuses with CodeStale when its
// applied sequence is below the floor, which the router turns into a
// primary fallback (read-your-writes).

// SetToken stamps a write-acknowledgement sequence token onto an OK
// response. Zero clears it.
func (r *Response) SetToken(seq uint64) {
	lo, hi := SplitU64(seq)
	r.Index, r.Limit = int32(lo), int32(hi)
}

// Token returns the write-acknowledgement sequence token of an OK
// response, or zero when the response is an error (Index/Limit then carry
// BoundsError operands) or the server did not stamp one.
func (r Response) Token() uint64 {
	if r.Code != CodeOK {
		return 0
	}
	return JoinU64(uint32(r.Index), uint32(r.Limit))
}

// SplitU64 and JoinU64 move 64-bit log sequence numbers through the u32
// value vector.
func SplitU64(v uint64) (lo, hi uint32) { return uint32(v), uint32(v >> 32) }

// JoinU64 is SplitU64's inverse.
func JoinU64(lo, hi uint32) uint64 { return uint64(hi)<<32 | uint64(lo) }
