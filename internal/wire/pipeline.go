package wire

import (
	"errors"
	"fmt"
	"time"
)

// Request pipelining. The synchronous Conn.Call pays one full network round
// trip per operation, so throughput is bounded by latency no matter how
// fast the server executes. A Pipeline decouples send from receive over the
// same connection: up to window requests ride in flight at once, frames
// accumulate in the connection's buffered writer and go to the socket in
// one flush, and replies come back in send order (the server processes each
// connection's frames serially), matched to their requests by the sequence
// number acting as a correlation ID.
//
// A Pipeline borrows the Conn's buffers and sequence counter; do not mix
// Conn.Call (or the typed helpers) with an active Pipeline while requests
// are in flight. Like Conn itself, a Pipeline is not safe for concurrent
// use — open one connection per worker.

// ErrWindowFull is returned by Send when the in-flight window is exhausted;
// the caller must Recv at least one reply before sending more.
var ErrWindowFull = errors.New("wire: pipeline window full")

// Pipeline is an asynchronous send/receive window over a Conn.
type Pipeline struct {
	c       *Conn
	window  int
	pending []uint32 // in-flight sequence numbers, FIFO from head
	head    int
}

// Pipeline returns a pipelined sender over c with the given in-flight
// window (minimum 1).
func (c *Conn) Pipeline(window int) *Pipeline {
	if window < 1 {
		window = 1
	}
	return &Pipeline{c: c, window: window}
}

// Window returns the configured in-flight depth.
func (p *Pipeline) Window() int { return p.window }

// InFlight returns how many requests await a reply.
func (p *Pipeline) InFlight() int { return len(p.pending) - p.head }

// Send assigns q a sequence number and encodes it into the connection's
// write buffer without flushing. It returns the assigned sequence. When the
// window is full it fails with ErrWindowFull and sends nothing.
func (p *Pipeline) Send(q Request) (uint32, error) {
	if p.InFlight() >= p.window {
		return 0, ErrWindowFull
	}
	c := p.c
	c.seq++
	q.Seq = c.seq
	// Arm the write deadline once per batch (first frame into an empty
	// buffer); it bounds any auto-flush later frames trigger, and Flush
	// re-arms before the real socket write.
	if c.Timeout > 0 && c.bw.Buffered() == 0 {
		if err := c.nc.SetWriteDeadline(time.Now().Add(c.Timeout)); err != nil {
			return 0, err
		}
	}
	c.buf = AppendRequest(c.buf[:0], q)
	if err := WriteFrame(c.bw, c.buf); err != nil {
		return 0, fmt.Errorf("wire: pipeline send %v: %w", q.Op, err)
	}
	if p.head == len(p.pending) {
		p.pending = p.pending[:0]
		p.head = 0
	}
	p.pending = append(p.pending, q.Seq)
	return q.Seq, nil
}

// Flush pushes every buffered frame to the socket. Recv flushes implicitly;
// explicit Flush is for callers that want requests moving before they are
// ready to read replies.
func (p *Pipeline) Flush() error {
	c := p.c
	if c.Timeout > 0 && c.bw.Buffered() > 0 {
		if err := c.nc.SetWriteDeadline(time.Now().Add(c.Timeout)); err != nil {
			return err
		}
	}
	if err := c.bw.Flush(); err != nil {
		return fmt.Errorf("wire: pipeline flush: %w", err)
	}
	return nil
}

// Recv flushes pending output and reads the next reply, which must match
// the oldest in-flight request's sequence (responses arrive in send order).
func (p *Pipeline) Recv() (Response, error) {
	if p.InFlight() == 0 {
		return Response{}, errors.New("wire: pipeline Recv with nothing in flight")
	}
	c := p.c
	if err := p.Flush(); err != nil {
		return Response{}, err
	}
	// Skip the deadline syscall when the reply (or its prefix) is already
	// buffered from an earlier read — the common case mid-batch.
	if c.Timeout > 0 && c.br.Buffered() == 0 {
		if err := c.nc.SetReadDeadline(time.Now().Add(c.Timeout)); err != nil {
			return Response{}, err
		}
	}
	payload, err := ReadFrame(c.br, c.MaxFrame)
	if err != nil {
		return Response{}, fmt.Errorf("wire: pipeline recv: %w", err)
	}
	r, err := ParseResponse(payload)
	if err != nil {
		return Response{}, err
	}
	want := p.pending[p.head]
	p.head++
	if r.Seq != want {
		return Response{}, fmt.Errorf("%w: reply seq %d, expected %d", ErrBadFrame, r.Seq, want)
	}
	c.noteToken(r)
	return r, nil
}
