package wire

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"

	"repro/internal/memdb"
)

func TestRequestRoundTrip(t *testing.T) {
	cases := []Request{
		{Seq: 1, Op: OpPing},
		{Seq: 7, Op: OpReadFld, Table: 2, Record: 13, Field: 1},
		{Seq: 0xFFFFFFFF, Op: OpWriteRec, Table: 3, Record: 0, Vals: []uint32{1, 2, 3, 0xFFFFFFFF}},
		{Seq: 9, Op: OpMove, Table: 3, Record: 5, Aux: 2},
		{Seq: 10, Op: OpAlloc, Table: -1, Record: -1, Field: -1, Aux: -1},
	}
	for _, q := range cases {
		p := AppendRequest(nil, q)
		got, err := ParseRequest(p)
		if err != nil {
			t.Fatalf("ParseRequest(%v): %v", q.Op, err)
		}
		if got.Seq != q.Seq || got.Op != q.Op || got.Table != q.Table ||
			got.Record != q.Record || got.Field != q.Field || got.Aux != q.Aux {
			t.Fatalf("round trip mismatch: sent %+v got %+v", q, got)
		}
		if len(got.Vals) != len(q.Vals) {
			t.Fatalf("vals length: sent %d got %d", len(q.Vals), len(got.Vals))
		}
		for i := range q.Vals {
			if got.Vals[i] != q.Vals[i] {
				t.Fatalf("vals[%d]: sent %d got %d", i, q.Vals[i], got.Vals[i])
			}
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	cases := []Response{
		{Seq: 1, Code: CodeOK, Vals: []uint32{42}},
		{Seq: 2, Code: CodeBounds, Index: 99, Limit: 64, Detail: "record"},
		{Seq: 3, Code: CodeInternal, Detail: "something odd"},
		{Seq: 4, Code: CodeOK, Vals: make([]uint32, 200)},
	}
	for _, r := range cases {
		p := AppendResponse(nil, r)
		got, err := ParseResponse(p)
		if err != nil {
			t.Fatalf("ParseResponse(code %d): %v", r.Code, err)
		}
		if got.Seq != r.Seq || got.Code != r.Code || got.Index != r.Index ||
			got.Limit != r.Limit || got.Detail != r.Detail || len(got.Vals) != len(r.Vals) {
			t.Fatalf("round trip mismatch: sent %+v got %+v", r, got)
		}
	}
}

func TestParseRejectsTruncatedAndOversized(t *testing.T) {
	q := AppendRequest(nil, Request{Op: OpWriteRec, Vals: []uint32{1, 2, 3}})
	for cut := 1; cut < len(q); cut++ {
		if _, err := ParseRequest(q[:cut]); err == nil {
			t.Fatalf("ParseRequest accepted a %d-byte truncation of %d", cut, len(q))
		}
	}
	r := AppendResponse(nil, Response{Code: CodeOK, Detail: "x", Vals: []uint32{9}})
	for cut := 1; cut < len(r); cut++ {
		if _, err := ParseResponse(r[:cut]); err == nil {
			t.Fatalf("ParseResponse accepted a %d-byte truncation of %d", cut, len(r))
		}
	}
	// Trailing garbage must be rejected too: frames are exact.
	if _, err := ParseRequest(append(q, 0)); err == nil {
		t.Fatal("ParseRequest accepted trailing bytes")
	}
	if _, err := ParseResponse(append(r, 0)); err == nil {
		t.Fatal("ParseResponse accepted trailing bytes")
	}
}

func TestFrameLimits(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFrame(&buf, 99); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("oversized frame: got %v, want ErrBadFrame", err)
	}
	buf.Reset()
	if err := WriteFrame(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFrame(&buf, MaxFrame); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("empty frame: got %v, want ErrBadFrame", err)
	}
	// Truncated body surfaces as an IO error, not a hang.
	buf.Reset()
	buf.Write([]byte{10, 0, 0, 0, 1, 2})
	if _, err := ReadFrame(&buf, MaxFrame); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated body: got %v, want ErrUnexpectedEOF", err)
	}
}

func TestErrorMappingRoundTrip(t *testing.T) {
	cases := []struct {
		err  error
		code Code
	}{
		{memdb.ErrCorruptCatalog, CodeCorruptCatalog},
		{fmt.Errorf("table 1 held by pid 3: %w", memdb.ErrLocked), CodeLocked},
		{memdb.ErrNoFreeRecord, CodeNoFreeRecord},
		{memdb.ErrClosed, CodeClosed},
		{fmt.Errorf("table 0 record 2: %w", memdb.ErrNotActive), CodeNotActive},
		{ErrUnknownOp, CodeUnknownOp},
		{ErrNoSession, CodeNoSession},
		{ErrSessionExists, CodeSessionExists},
		{ErrOverload, CodeOverload},
		{ErrShutdown, CodeShutdown},
		{ErrTimeout, CodeTimeout},
		{errors.New("weird"), CodeInternal},
	}
	for _, c := range cases {
		r := ErrorResponse(5, c.err)
		if r.Code != c.code {
			t.Fatalf("ErrorResponse(%v) code %d, want %d", c.err, r.Code, c.code)
		}
		back := r.Err()
		if back == nil {
			t.Fatalf("decoded error for code %d is nil", c.code)
		}
		// The decoded error must satisfy errors.Is against the original
		// sentinel (unwrapping dressing on either side).
		for _, sentinel := range []error{
			memdb.ErrCorruptCatalog, memdb.ErrLocked, memdb.ErrNoFreeRecord,
			memdb.ErrClosed, memdb.ErrNotActive, ErrUnknownOp, ErrNoSession,
			ErrSessionExists, ErrOverload, ErrShutdown, ErrTimeout,
		} {
			if errors.Is(c.err, sentinel) != errors.Is(back, sentinel) {
				t.Fatalf("code %d: errors.Is(%v) disagree between %v and %v",
					c.code, sentinel, c.err, back)
			}
		}
	}
}

func TestBoundsErrorCrossesWire(t *testing.T) {
	orig := &memdb.BoundsError{What: "record", Index: 99, Limit: 64}
	r := ErrorResponse(1, fmt.Errorf("wrapped: %w", orig))
	if r.Code != CodeBounds {
		t.Fatalf("code %d, want CodeBounds", r.Code)
	}
	p := AppendResponse(nil, r)
	got, err := ParseResponse(p)
	if err != nil {
		t.Fatal(err)
	}
	var be *memdb.BoundsError
	if !errors.As(got.Err(), &be) {
		t.Fatalf("decoded error %v is not a BoundsError", got.Err())
	}
	if be.What != orig.What || be.Index != orig.Index || be.Limit != orig.Limit {
		t.Fatalf("BoundsError fields lost: got %+v want %+v", be, orig)
	}
}

func TestOKResponseErrIsNil(t *testing.T) {
	if err := (Response{Code: CodeOK}).Err(); err != nil {
		t.Fatalf("OK response decodes to error %v", err)
	}
}

func TestOpStrings(t *testing.T) {
	for o := OpPing; o < opMax; o++ {
		if !o.Valid() {
			t.Fatalf("op %d not valid", o)
		}
		if s := o.String(); s == "" || s[0] == 'O' && s != "DBstatus" && o != OpPing {
			// Just ensure no defined op falls through to the default
			// formatting.
			if len(s) > 3 && s[:3] == "Op(" {
				t.Fatalf("op %d has no name", o)
			}
		}
	}
	if Op(0).Valid() || Op(200).Valid() {
		t.Fatal("out-of-range ops report valid")
	}
}
