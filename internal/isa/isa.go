// Package isa defines the small RISC-style instruction set the reproduced
// call-processing client is lowered onto.
//
// The paper instruments the client at the SPARC assembly level; Go's
// runtime hides native control flow, so this reproduction makes the program
// counter explicit again: client programs are arrays of 32-bit instruction
// words executed by internal/vm, PECOS assertion blocks are real words
// embedded in that stream, and the NFTAPE error models (ADDIF, DATAIF,
// DATAOF, DATAInF) are literal bit manipulations of instruction words.
//
// Encoding (little layout, 32-bit words):
//
//	op(8) | rd(4) | rs1(4) | rs2(4) | imm12(12)     — register forms
//	op(8) | rd(4) | spare(4) | imm16(16)            — immediate forms
//
// Branch, jump, and call targets are absolute word addresses, so valid
// target sets are plain constants — what a PECOS assertion block stores.
package isa

import (
	"fmt"
)

// Op is an instruction opcode.
type Op uint8

// Instruction opcodes. OpAssert is reserved for PECOS instrumentation: an
// assertion header whose imm16 counts the raw target words that follow it.
const (
	OpNop Op = iota + 1
	OpHalt
	OpMovi // rd ← imm16
	OpMov  // rd ← rs1
	OpAdd  // rd ← rs1 + rs2
	OpSub  // rd ← rs1 - rs2
	OpMul  // rd ← rs1 * rs2
	OpDiv  // rd ← rs1 / rs2 (traps on rs2 == 0)
	OpAnd
	OpOr
	OpXor
	OpAddi // rd ← rs1 + signExtend(imm12)
	OpCmp  // flags ← compare(rs1, rs2)
	OpCmpi // flags ← compare(rs1, signExtend(imm12))
	OpBeq  // branch to imm16 when Z
	OpBne  // branch to imm16 when !Z
	OpBlt  // branch to imm16 when N
	OpBge  // branch to imm16 when !N
	OpJmp  // jump to imm16
	OpJr   // jump to rs1 (runtime-determined target)
	OpCall // call imm16, pushing return address
	OpCalr // call rs1 (runtime-determined target)
	OpRet  // return to popped address
	OpLd   // rd ← mem[rs1 + signExtend(imm12)]
	OpSt   // mem[rs1 + signExtend(imm12)] ← rs2
	OpSys  // syscall imm16 (bridges to the database API)
	OpAssert
	opMax
)

// NumRegs is the register-file size (r0..r15).
const NumRegs = 16

var opNames = map[Op]string{
	OpNop: "nop", OpHalt: "halt", OpMovi: "movi", OpMov: "mov",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpAddi: "addi",
	OpCmp: "cmp", OpCmpi: "cmpi",
	OpBeq: "beq", OpBne: "bne", OpBlt: "blt", OpBge: "bge",
	OpJmp: "jmp", OpJr: "jr", OpCall: "call", OpCalr: "calr",
	OpRet: "ret", OpLd: "ld", OpSt: "st", OpSys: "sys",
	OpAssert: "assert",
}

// String returns the mnemonic.
func (o Op) String() string {
	if n, ok := opNames[o]; ok {
		return n
	}
	return fmt.Sprintf("op%d", uint8(o))
}

// Valid reports whether the opcode is defined.
func (o Op) Valid() bool { return o >= OpNop && o < opMax }

// IsCFI reports whether the opcode is a control-flow instruction — the
// trigger for inserting a PECOS assertion block.
func (o Op) IsCFI() bool {
	switch o {
	case OpBeq, OpBne, OpBlt, OpBge, OpJmp, OpJr, OpCall, OpCalr, OpRet:
		return true
	}
	return false
}

// Instr is a decoded instruction.
type Instr struct {
	Op    Op
	Rd    uint8
	Rs1   uint8
	Rs2   uint8
	Imm12 int32  // sign-extended 12-bit immediate (register forms)
	Imm16 uint32 // 16-bit immediate (absolute addresses, syscall numbers)
}

// usesImm16 reports whether the opcode uses the imm16 layout.
func usesImm16(op Op) bool {
	switch op {
	case OpMovi, OpBeq, OpBne, OpBlt, OpBge, OpJmp, OpCall, OpSys, OpAssert:
		return true
	}
	return false
}

// Encode packs the instruction into a word.
func Encode(in Instr) uint32 {
	w := uint32(in.Op) << 24
	w |= uint32(in.Rd&0xF) << 20
	if usesImm16(in.Op) {
		w |= in.Imm16 & 0xFFFF
		return w
	}
	w |= uint32(in.Rs1&0xF) << 16
	w |= uint32(in.Rs2&0xF) << 12
	w |= uint32(in.Imm12) & 0xFFF
	return w
}

// operandMask returns the word bits an opcode's operands may occupy.
// All other non-opcode bits are reserved and must be zero — as in real
// RISC encodings, where reserved-field violations are illegal instructions.
// This is what makes single-bit corruption of an instruction word highly
// detectable, matching the dense SPARC encoding the paper instrumented.
func operandMask(op Op) uint32 {
	const (
		rdBits    = 0x00F00000
		rs1Bits   = 0x000F0000
		rs2Bits   = 0x0000F000
		imm12Bits = 0x00000FFF
		imm16Bits = 0x0000FFFF
	)
	switch op {
	case OpNop, OpHalt, OpRet:
		return 0
	case OpMovi:
		return rdBits | imm16Bits
	case OpMov:
		return rdBits | rs1Bits
	case OpAdd, OpSub, OpMul, OpDiv, OpAnd, OpOr, OpXor:
		return rdBits | rs1Bits | rs2Bits
	case OpAddi, OpLd:
		return rdBits | rs1Bits | imm12Bits
	case OpCmp:
		return rs1Bits | rs2Bits
	case OpCmpi:
		return rs1Bits | imm12Bits
	case OpBeq, OpBne, OpBlt, OpBge, OpJmp, OpCall, OpSys, OpAssert:
		return imm16Bits
	case OpJr, OpCalr:
		return rs1Bits
	case OpSt:
		return rs1Bits | rs2Bits | imm12Bits
	}
	return 0
}

// Decode unpacks a word. The error reports undefined opcodes and reserved-
// field violations; operand fields are still extracted so callers can
// inspect a corrupted word (the VM turns the error into an illegal-
// instruction trap).
func Decode(w uint32) (Instr, error) {
	in := Instr{
		Op:    Op(w >> 24),
		Rd:    uint8(w >> 20 & 0xF),
		Rs1:   uint8(w >> 16 & 0xF),
		Rs2:   uint8(w >> 12 & 0xF),
		Imm16: w & 0xFFFF,
	}
	imm12 := int32(w & 0xFFF)
	if imm12&0x800 != 0 {
		imm12 -= 0x1000
	}
	in.Imm12 = imm12
	if !in.Op.Valid() {
		return in, fmt.Errorf("isa: undefined opcode %d", uint8(in.Op))
	}
	if w&0x00FFFFFF&^operandMask(in.Op) != 0 {
		return in, fmt.Errorf("isa: reserved bits set in %v encoding", in.Op)
	}
	return in, nil
}

// Disassemble renders one instruction word.
func Disassemble(w uint32) string {
	in, err := Decode(w)
	if err != nil {
		return fmt.Sprintf(".word 0x%08x", w)
	}
	switch in.Op {
	case OpNop, OpHalt, OpRet:
		return in.Op.String()
	case OpMovi:
		return fmt.Sprintf("movi r%d, %d", in.Rd, in.Imm16)
	case OpMov:
		return fmt.Sprintf("mov r%d, r%d", in.Rd, in.Rs1)
	case OpAdd, OpSub, OpMul, OpDiv, OpAnd, OpOr, OpXor:
		return fmt.Sprintf("%s r%d, r%d, r%d", in.Op, in.Rd, in.Rs1, in.Rs2)
	case OpAddi:
		return fmt.Sprintf("addi r%d, r%d, %d", in.Rd, in.Rs1, in.Imm12)
	case OpCmp:
		return fmt.Sprintf("cmp r%d, r%d", in.Rs1, in.Rs2)
	case OpCmpi:
		return fmt.Sprintf("cmpi r%d, %d", in.Rs1, in.Imm12)
	case OpBeq, OpBne, OpBlt, OpBge, OpJmp, OpCall:
		return fmt.Sprintf("%s %d", in.Op, in.Imm16)
	case OpJr, OpCalr:
		return fmt.Sprintf("%s r%d", in.Op, in.Rs1)
	case OpLd:
		return fmt.Sprintf("ld r%d, [r%d%+d]", in.Rd, in.Rs1, in.Imm12)
	case OpSt:
		return fmt.Sprintf("st [r%d%+d], r%d", in.Rs1, in.Imm12, in.Rs2)
	case OpSys:
		return fmt.Sprintf("sys %d", in.Imm16)
	case OpAssert:
		return fmt.Sprintf("assert %d", in.Imm16)
	}
	return fmt.Sprintf(".word 0x%08x", w)
}

// DisassembleProgram renders a whole text segment with addresses.
func DisassembleProgram(text []uint32) []string {
	out := make([]string, 0, len(text))
	i := 0
	for i < len(text) {
		line := fmt.Sprintf("%4d: %s", i, Disassemble(text[i]))
		out = append(out, line)
		in, err := Decode(text[i])
		if err == nil && in.Op == OpAssert {
			// Raw target words follow the assertion header.
			n := int(in.Imm16)
			for k := 1; k <= n && i+k < len(text); k++ {
				out = append(out, fmt.Sprintf("%4d:   .target %d", i+k, text[i+k]))
			}
			i += n
		}
		i++
	}
	return out
}
