package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Program is an assembled text segment plus the symbol information the
// PECOS instrumenter needs: label addresses and which instructions carry a
// label-resolved immediate (so relocation after instruction insertion can
// distinguish an address constant from plain data).
type Program struct {
	// Text is the encoded instruction stream.
	Text []uint32
	// Labels maps label names to word addresses.
	Labels map[string]uint32
	// LabelRefs maps instruction index → label name for every imm16
	// operand that was written as a label in the source.
	LabelRefs map[int]string
}

// Assemble translates assembly text into a text segment. Syntax:
//
//	; comment
//	label:
//	    movi r1, 42
//	    cmp  r1, r2
//	    beq  done
//	    call subroutine
//	done:
//	    halt
//
// Registers are r0..r15; immediates are decimal or 0x-hex; branch, jump,
// and call targets are labels or absolute word addresses.
func Assemble(src string) ([]uint32, error) {
	p, err := AssembleWithInfo(src)
	if err != nil {
		return nil, err
	}
	return p.Text, nil
}

// AssembleWithInfo is Assemble, additionally returning label addresses and
// label-reference positions for instrumentation passes.
func AssembleWithInfo(src string) (*Program, error) {
	type pending struct {
		line  int
		index int
		label string
	}
	labels := make(map[string]uint32)
	var instrs []Instr
	var fixups []pending

	lines := strings.Split(src, "\n")
	addr := 0
	for lineNo, raw := range lines {
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Labels, possibly followed by an instruction on the same line.
		for {
			i := strings.IndexByte(line, ':')
			if i < 0 {
				break
			}
			label := strings.TrimSpace(line[:i])
			if label == "" || strings.ContainsAny(label, " \t,") {
				return nil, fmt.Errorf("isa: line %d: malformed label %q", lineNo+1, label)
			}
			if _, dup := labels[label]; dup {
				return nil, fmt.Errorf("isa: line %d: duplicate label %q", lineNo+1, label)
			}
			labels[label] = uint32(addr)
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue
		}
		in, labelRef, err := parseInstr(line)
		if err != nil {
			return nil, fmt.Errorf("isa: line %d: %w", lineNo+1, err)
		}
		if labelRef != "" {
			fixups = append(fixups, pending{line: lineNo + 1, index: len(instrs), label: labelRef})
		}
		instrs = append(instrs, in)
		addr++
	}
	refs := make(map[int]string, len(fixups))
	for _, fx := range fixups {
		target, ok := labels[fx.label]
		if !ok {
			return nil, fmt.Errorf("isa: line %d: undefined label %q", fx.line, fx.label)
		}
		instrs[fx.index].Imm16 = target
		refs[fx.index] = fx.label
	}
	text := make([]uint32, len(instrs))
	for i, in := range instrs {
		text[i] = Encode(in)
	}
	return &Program{Text: text, Labels: labels, LabelRefs: refs}, nil
}

// parseInstr parses one instruction; labelRef is non-empty when the imm16
// operand is a label awaiting resolution.
func parseInstr(line string) (in Instr, labelRef string, err error) {
	fields := strings.Fields(line)
	mnemonic := strings.ToLower(fields[0])
	rest := strings.TrimSpace(line[len(fields[0]):])
	var args []string
	if rest != "" {
		for _, a := range strings.Split(rest, ",") {
			args = append(args, strings.TrimSpace(a))
		}
	}

	var op Op
	for o, name := range opNames {
		if name == mnemonic {
			op = o
			break
		}
	}
	if op == 0 {
		return in, "", fmt.Errorf("unknown mnemonic %q", mnemonic)
	}
	in.Op = op

	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s wants %d operands, got %d", mnemonic, n, len(args))
		}
		return nil
	}

	switch op {
	case OpNop, OpHalt, OpRet:
		return in, "", need(0)
	case OpMovi:
		if err := need(2); err != nil {
			return in, "", err
		}
		if in.Rd, err = parseReg(args[0]); err != nil {
			return in, "", err
		}
		imm, ref, err := parseImmOrLabel(args[1], 0xFFFF)
		if err != nil {
			return in, "", err
		}
		in.Imm16 = imm
		return in, ref, nil
	case OpMov:
		if err := need(2); err != nil {
			return in, "", err
		}
		if in.Rd, err = parseReg(args[0]); err != nil {
			return in, "", err
		}
		in.Rs1, err = parseReg(args[1])
		return in, "", err
	case OpAdd, OpSub, OpMul, OpDiv, OpAnd, OpOr, OpXor:
		if err := need(3); err != nil {
			return in, "", err
		}
		if in.Rd, err = parseReg(args[0]); err != nil {
			return in, "", err
		}
		if in.Rs1, err = parseReg(args[1]); err != nil {
			return in, "", err
		}
		in.Rs2, err = parseReg(args[2])
		return in, "", err
	case OpAddi:
		if err := need(3); err != nil {
			return in, "", err
		}
		if in.Rd, err = parseReg(args[0]); err != nil {
			return in, "", err
		}
		if in.Rs1, err = parseReg(args[1]); err != nil {
			return in, "", err
		}
		in.Imm12, err = parseSigned(args[2])
		return in, "", err
	case OpCmp:
		if err := need(2); err != nil {
			return in, "", err
		}
		if in.Rs1, err = parseReg(args[0]); err != nil {
			return in, "", err
		}
		in.Rs2, err = parseReg(args[1])
		return in, "", err
	case OpCmpi:
		if err := need(2); err != nil {
			return in, "", err
		}
		if in.Rs1, err = parseReg(args[0]); err != nil {
			return in, "", err
		}
		in.Imm12, err = parseSigned(args[1])
		return in, "", err
	case OpBeq, OpBne, OpBlt, OpBge, OpJmp, OpCall:
		if err := need(1); err != nil {
			return in, "", err
		}
		imm, ref, err := parseImmOrLabel(args[0], 0xFFFF)
		if err != nil {
			return in, "", err
		}
		in.Imm16 = imm
		return in, ref, nil
	case OpJr, OpCalr:
		if err := need(1); err != nil {
			return in, "", err
		}
		in.Rs1, err = parseReg(args[0])
		return in, "", err
	case OpLd:
		if err := need(2); err != nil {
			return in, "", err
		}
		if in.Rd, err = parseReg(args[0]); err != nil {
			return in, "", err
		}
		in.Rs1, in.Imm12, err = parseMem(args[1])
		return in, "", err
	case OpSt:
		if err := need(2); err != nil {
			return in, "", err
		}
		if in.Rs1, in.Imm12, err = parseMem(args[0]); err != nil {
			return in, "", err
		}
		in.Rs2, err = parseReg(args[1])
		return in, "", err
	case OpSys, OpAssert:
		if err := need(1); err != nil {
			return in, "", err
		}
		imm, ref, err := parseImmOrLabel(args[0], 0xFFFF)
		if err != nil || ref != "" {
			if ref != "" {
				err = fmt.Errorf("%s takes a number, not a label", mnemonic)
			}
			return in, "", err
		}
		in.Imm16 = imm
		return in, "", nil
	}
	return in, "", fmt.Errorf("unhandled mnemonic %q", mnemonic)
}

func parseReg(s string) (uint8, error) {
	if len(s) < 2 || (s[0] != 'r' && s[0] != 'R') {
		return 0, fmt.Errorf("bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= NumRegs {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return uint8(n), nil
}

func parseImmOrLabel(s string, max uint64) (uint32, string, error) {
	if s == "" {
		return 0, "", fmt.Errorf("empty operand")
	}
	if v, err := strconv.ParseUint(strings.TrimPrefix(s, "0x"), base(s), 32); err == nil {
		if v > max {
			return 0, "", fmt.Errorf("immediate %s exceeds %d", s, max)
		}
		return uint32(v), "", nil
	}
	// Not a number: treat as a label reference.
	if strings.ContainsAny(s, " \t[]") {
		return 0, "", fmt.Errorf("bad operand %q", s)
	}
	return 0, s, nil
}

func parseSigned(s string) (int32, error) {
	v, err := strconv.ParseInt(s, 0, 32)
	if err != nil || v < -2048 || v > 2047 {
		return 0, fmt.Errorf("bad 12-bit immediate %q", s)
	}
	return int32(v), nil
}

// parseMem parses "[rN+imm]", "[rN-imm]", or "[rN]".
func parseMem(s string) (reg uint8, off int32, err error) {
	if len(s) < 3 || s[0] != '[' || s[len(s)-1] != ']' {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	inner := s[1 : len(s)-1]
	sep := strings.IndexAny(inner, "+-")
	if sep < 0 {
		reg, err = parseReg(strings.TrimSpace(inner))
		return reg, 0, err
	}
	reg, err = parseReg(strings.TrimSpace(inner[:sep]))
	if err != nil {
		return 0, 0, err
	}
	off, err = parseSigned(strings.TrimSpace(inner[sep:]))
	return reg, off, err
}

func base(s string) int {
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		return 16
	}
	return 10
}
