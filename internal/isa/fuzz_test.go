package isa

import "testing"

// FuzzDecode checks that Decode is total: any 32-bit word either errors or
// yields an instruction that re-encodes to the identical word.
func FuzzDecode(f *testing.F) {
	f.Add(uint32(0))
	f.Add(Encode(Instr{Op: OpHalt}))
	f.Add(Encode(Instr{Op: OpMovi, Rd: 3, Imm16: 999}))
	f.Add(Encode(Instr{Op: OpBeq, Imm16: 4}))
	f.Add(Encode(Instr{Op: OpSt, Rs1: 1, Rs2: 2, Imm12: -1}))
	f.Add(uint32(0xFFFFFFFF))
	f.Fuzz(func(t *testing.T, w uint32) {
		in, err := Decode(w)
		if err != nil {
			return
		}
		if got := Encode(in); got != w {
			t.Fatalf("Decode(%#x) re-encodes to %#x", w, got)
		}
		// Disassembly of a decodable word never produces a raw .word.
		if s := Disassemble(w); len(s) == 0 {
			t.Fatalf("empty disassembly for %#x", w)
		}
	})
}

// FuzzAssemble checks the assembler never panics and that everything it
// accepts disassembles and reassembles stably.
func FuzzAssemble(f *testing.F) {
	f.Add("movi r1, 5\nhalt")
	f.Add("loop: addi r1, r1, 1\ncmpi r1, 9\nblt loop\nhalt")
	f.Add("call fn\nhalt\nfn: ret")
	f.Add("ld r1, [r2+4]\nst [r2-4], r1")
	f.Add("x:\ny: jmp x")
	f.Add("; only a comment")
	f.Add("bogus operand soup , , ,")
	f.Fuzz(func(t *testing.T, src string) {
		text, err := Assemble(src)
		if err != nil {
			return
		}
		for i, w := range text {
			in, derr := Decode(w)
			if derr != nil {
				t.Fatalf("assembled word %d (%#x) does not decode: %v", i, w, derr)
			}
			if in.Op == OpAssert {
				t.Fatalf("assembler emitted a reserved assert at %d", i)
			}
		}
	})
}
