package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tests := []Instr{
		{Op: OpNop},
		{Op: OpHalt},
		{Op: OpMovi, Rd: 3, Imm16: 12345},
		{Op: OpMov, Rd: 1, Rs1: 2},
		{Op: OpAdd, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: OpDiv, Rd: 15, Rs1: 14, Rs2: 13},
		{Op: OpAddi, Rd: 4, Rs1: 5, Imm12: -7},
		{Op: OpAddi, Rd: 4, Rs1: 5, Imm12: 2047},
		{Op: OpAddi, Rd: 4, Rs1: 5, Imm12: -2048},
		{Op: OpCmp, Rs1: 1, Rs2: 2},
		{Op: OpCmpi, Rs1: 1, Imm12: -100},
		{Op: OpBeq, Imm16: 999},
		{Op: OpJmp, Imm16: 0xFFFF},
		{Op: OpJr, Rs1: 7},
		{Op: OpCall, Imm16: 42},
		{Op: OpCalr, Rs1: 9},
		{Op: OpRet},
		{Op: OpLd, Rd: 2, Rs1: 3, Imm12: 16},
		{Op: OpSt, Rs1: 3, Rs2: 4, Imm12: -16},
		{Op: OpSys, Imm16: 5},
		{Op: OpAssert, Imm16: 2},
	}
	for _, in := range tests {
		w := Encode(in)
		got, err := Decode(w)
		if err != nil {
			t.Fatalf("Decode(%v): %v", in, err)
		}
		if got.Op != in.Op || got.Rd != in.Rd {
			t.Fatalf("round trip %v → %v", in, got)
		}
		if usesImm16(in.Op) {
			if got.Imm16 != in.Imm16 {
				t.Fatalf("imm16 round trip %v → %v", in, got)
			}
		} else {
			if got.Rs1 != in.Rs1 || got.Rs2 != in.Rs2 || got.Imm12 != in.Imm12 {
				t.Fatalf("register form round trip %v → %v", in, got)
			}
		}
	}
}

func TestDecodeRejectsUndefinedOpcode(t *testing.T) {
	if _, err := Decode(0x00_000000); err == nil {
		t.Fatal("opcode 0 decoded")
	}
	if _, err := Decode(0xFF_000000); err == nil {
		t.Fatal("opcode 255 decoded")
	}
}

func TestIsCFI(t *testing.T) {
	cfis := []Op{OpBeq, OpBne, OpBlt, OpBge, OpJmp, OpJr, OpCall, OpCalr, OpRet}
	for _, op := range cfis {
		if !op.IsCFI() {
			t.Errorf("%v not classified as CFI", op)
		}
	}
	for _, op := range []Op{OpNop, OpHalt, OpMovi, OpAdd, OpSys, OpAssert, OpLd} {
		if op.IsCFI() {
			t.Errorf("%v wrongly classified as CFI", op)
		}
	}
}

func TestAssembleBasicProgram(t *testing.T) {
	text, err := Assemble(`
		; compute 6*7 and halt
		movi r1, 6
		movi r2, 7
		mul  r3, r1, r2
		halt
	`)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	if len(text) != 4 {
		t.Fatalf("len = %d, want 4", len(text))
	}
	in, err := Decode(text[2])
	if err != nil || in.Op != OpMul || in.Rd != 3 || in.Rs1 != 1 || in.Rs2 != 2 {
		t.Fatalf("instr 2 = %+v, err %v", in, err)
	}
}

func TestAssembleLabelsAndBranches(t *testing.T) {
	text, err := Assemble(`
	start:
		movi r1, 0
	loop:
		addi r1, r1, 1
		cmpi r1, 10
		blt  loop
		call sub
		jmp  end
	sub:
		ret
	end:
		halt
	`)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	blt, err := Decode(text[3])
	if err != nil || blt.Op != OpBlt || blt.Imm16 != 1 {
		t.Fatalf("blt = %+v (%v), want target 1", blt, err)
	}
	call, err := Decode(text[4])
	if err != nil || call.Op != OpCall || call.Imm16 != 6 {
		t.Fatalf("call = %+v, want target 6", call)
	}
	jmp, err := Decode(text[5])
	if err != nil || jmp.Op != OpJmp || jmp.Imm16 != 7 {
		t.Fatalf("jmp = %+v, want target 7", jmp)
	}
}

func TestAssembleMemoryOperands(t *testing.T) {
	text, err := Assemble(`
		ld r1, [r2+4]
		st [r2-8], r3
		ld r4, [r5]
	`)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	ld, _ := Decode(text[0])
	if ld.Op != OpLd || ld.Rd != 1 || ld.Rs1 != 2 || ld.Imm12 != 4 {
		t.Fatalf("ld = %+v", ld)
	}
	st, _ := Decode(text[1])
	if st.Op != OpSt || st.Rs1 != 2 || st.Rs2 != 3 || st.Imm12 != -8 {
		t.Fatalf("st = %+v", st)
	}
	ld2, _ := Decode(text[2])
	if ld2.Imm12 != 0 || ld2.Rs1 != 5 {
		t.Fatalf("ld2 = %+v", ld2)
	}
}

func TestAssembleHexAndComments(t *testing.T) {
	text, err := Assemble(`
		movi r1, 0xFF   ; hex immediate
		sys 3           ; syscall
	`)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	movi, _ := Decode(text[0])
	if movi.Imm16 != 255 {
		t.Fatalf("movi imm = %d", movi.Imm16)
	}
}

func TestAssembleLabelOnSameLine(t *testing.T) {
	text, err := Assemble("start: movi r1, 1\n jmp start")
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	jmp, _ := Decode(text[1])
	if jmp.Imm16 != 0 {
		t.Fatalf("jmp target = %d, want 0", jmp.Imm16)
	}
}

func TestAssembleErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
	}{
		{"unknown mnemonic", "bogus r1, r2"},
		{"undefined label", "jmp nowhere"},
		{"duplicate label", "a:\na:\nhalt"},
		{"bad register", "mov r99, r1"},
		{"wrong arity", "add r1, r2"},
		{"imm too large", "movi r1, 70000"},
		{"imm12 too large", "addi r1, r1, 5000"},
		{"bad memory operand", "ld r1, r2"},
		{"label in sys", "x: sys x"},
		{"malformed label", "a b:\nhalt"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Assemble(tt.src); err == nil {
				t.Fatalf("Assemble(%q) succeeded", tt.src)
			}
		})
	}
}

func TestDisassemble(t *testing.T) {
	tests := []struct {
		src  string
		want string
	}{
		{"nop", "nop"},
		{"movi r1, 42", "movi r1, 42"},
		{"add r1, r2, r3", "add r1, r2, r3"},
		{"addi r1, r2, -5", "addi r1, r2, -5"},
		{"cmp r1, r2", "cmp r1, r2"},
		{"beq 7", "beq 7"},
		{"jr r3", "jr r3"},
		{"ld r1, [r2+4]", "ld r1, [r2+4]"},
		{"st [r2-8], r3", "st [r2-8], r3"},
		{"sys 9", "sys 9"},
		{"ret", "ret"},
	}
	for _, tt := range tests {
		text, err := Assemble(tt.src)
		if err != nil {
			t.Fatalf("Assemble(%q): %v", tt.src, err)
		}
		if got := Disassemble(text[0]); got != tt.want {
			t.Errorf("Disassemble(%q) = %q, want %q", tt.src, got, tt.want)
		}
	}
	if got := Disassemble(0xFF000000); !strings.HasPrefix(got, ".word") {
		t.Errorf("undefined opcode disassembled as %q", got)
	}
}

func TestDisassembleProgramSkipsAssertTargets(t *testing.T) {
	text := []uint32{
		Encode(Instr{Op: OpAssert, Imm16: 2}),
		5, // raw target words
		9,
		Encode(Instr{Op: OpJmp, Imm16: 5}),
		Encode(Instr{Op: OpHalt}),
	}
	lines := DisassembleProgram(text)
	if len(lines) != 5 {
		t.Fatalf("lines = %v", lines)
	}
	if !strings.Contains(lines[1], ".target 5") || !strings.Contains(lines[2], ".target 9") {
		t.Fatalf("target words not rendered: %v", lines)
	}
	if !strings.Contains(lines[3], "jmp 5") {
		t.Fatalf("CFI after assertion not rendered: %v", lines)
	}
}

func TestOpStringFallback(t *testing.T) {
	if Op(200).String() != "op200" {
		t.Fatal("Op fallback string wrong")
	}
}

// Property: assembling a disassembled single instruction reproduces the
// original word, for all valid register-form instructions.
func TestPropertyDisasmAsmRoundTrip(t *testing.T) {
	ops := []Op{OpMov, OpAdd, OpSub, OpMul, OpDiv, OpAnd, OpOr, OpXor, OpAddi, OpCmp, OpCmpi, OpLd, OpSt}
	f := func(opIdx, rd, rs1, rs2 uint8, imm int16) bool {
		op := ops[int(opIdx)%len(ops)]
		// Populate only the fields the op's disassembly renders; unused
		// encoded fields would not survive a disasm→asm round trip.
		in := Instr{Op: op, Rs1: rs1 % NumRegs}
		imm12 := int32(imm % 2048)
		switch op {
		case OpMov:
			in.Rd = rd % NumRegs
		case OpAdd, OpSub, OpMul, OpDiv, OpAnd, OpOr, OpXor:
			in.Rd = rd % NumRegs
			in.Rs2 = rs2 % NumRegs
		case OpAddi, OpLd:
			in.Rd = rd % NumRegs
			in.Imm12 = imm12
		case OpCmp:
			in.Rs2 = rs2 % NumRegs
		case OpCmpi:
			in.Imm12 = imm12
		case OpSt:
			in.Rs2 = rs2 % NumRegs
			in.Imm12 = imm12
		}
		w := Encode(in)
		src := Disassemble(w)
		text, err := Assemble(src)
		if err != nil || len(text) != 1 {
			return false
		}
		return text[0] == w
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: every 32-bit word either fails to decode (undefined opcode or
// reserved-field violation) or round-trips exactly through Encode/Decode.
func TestPropertyDecodeTotal(t *testing.T) {
	f := func(w uint32) bool {
		in, err := Decode(w)
		if err != nil {
			// Either the opcode is undefined, or a reserved bit is set.
			return !in.Op.Valid() || w&0x00FFFFFF&^operandMask(in.Op) != 0
		}
		// A successfully decoded word re-encodes to itself: reserved
		// fields were zero and all operand bits survived.
		return Encode(in) == w
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsReservedBits(t *testing.T) {
	// beq with a nonzero rd field: reserved-field violation.
	w := Encode(Instr{Op: OpBeq, Imm16: 5}) | 0x00300000
	if _, err := Decode(w); err == nil {
		t.Fatal("beq with reserved bits decoded")
	}
	// ret with any operand bits: reserved.
	w = Encode(Instr{Op: OpRet}) | 1
	if _, err := Decode(w); err == nil {
		t.Fatal("ret with reserved bits decoded")
	}
	// mov with rs2 bits set: reserved.
	w = Encode(Instr{Op: OpMov, Rd: 1, Rs1: 2}) | 0x00003000
	if _, err := Decode(w); err == nil {
		t.Fatal("mov with reserved bits decoded")
	}
}
